// Package core assembles the paper's engines behind one interface. The
// primary contributions — IPO-Tree Search (§3) and Adaptive SFS (§4) — live
// in their own packages (internal/ipotree, internal/adaptive); core provides
// the uniform Engine view used by the public API, the CLIs and the benchmark
// harness, plus the SFS-D baseline, the hybrid of §5.3 and the partitioned
// multi-core engines of internal/parallel.
//
// Every engine built on the flat kernel reads a versioned columnar store
// (flat.Store) and supports §4.3 maintenance through the Maintainer
// interface: scan engines are trivially maintainable (each query projects
// the current snapshot), SFS-A maintains its structures incrementally, and
// the tree-backed engines version-gate their tree — it answers while the
// data is unchanged, queries fall back to a live-snapshot scan after a
// mutation, and compaction rebuilds the tree. Only the legacy pointer-kernel
// engines are immutable.
package core

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"

	"prefsky/internal/adaptive"
	"prefsky/internal/data"
	"prefsky/internal/dominance"
	"prefsky/internal/flat"
	"prefsky/internal/hybrid"
	"prefsky/internal/ipotree"
	"prefsky/internal/order"
	"prefsky/internal/parallel"
	"prefsky/internal/skyline"
)

// Kernel re-exports the scan-kernel selector: KernelFlat (columnar block +
// per-query rank projection, the default) or KernelPointer (the original
// per-point slice kernel). It applies to the scan-based kinds — sfsd,
// parallel-sfs and parallel-hybrid's fallback.
type Kernel = flat.Kernel

// Kernel choices for Options.Kernel.
const (
	KernelFlat    = flat.KernelFlat
	KernelPointer = flat.KernelPointer
)

// Engine answers implicit-preference skyline queries.
type Engine interface {
	// Name identifies the algorithm (the labels of §5: "IPO Tree",
	// "IPO Tree-10", "SFS-A", "SFS-D", "Hybrid", plus the partitioned
	// "Parallel-SFS" and "Parallel-Hybrid").
	Name() string
	// Skyline returns SKY(R̃′) as ascending point ids. The context bounds
	// the query: engines observe cancellation at least on entry, and the
	// partitioned engines abort between blocks, returning ctx.Err().
	Skyline(ctx context.Context, pref *order.Preference) ([]data.PointID, error)
	// SizeBytes reports the storage the engine retains beyond the dataset.
	SizeBytes() int
}

// Maintainer applies §4.3 incremental maintenance: point insertions and
// deletions that queries reflect immediately, without rebuilding the engine.
type Maintainer interface {
	// Insert adds a point, returning its assigned id. Ids are never reused.
	Insert(num []float64, nom []order.Value) (data.PointID, error)
	// Delete removes a live point. Unknown or already-deleted ids return an
	// error wrapping flat.ErrUnknownPoint.
	Delete(id data.PointID) error
}

// BatchMaintainer is the optional batch form of Maintainer: the whole batch
// is applied under one writer-lock acquisition and one snapshot publish.
// flat.Store implements it; the service uses it when available so a 1024-id
// delete clones the tombstone set once instead of 1024 times.
type BatchMaintainer interface {
	Maintainer
	// InsertBatch appends points row-wise (nums[i] with noms[i]); the whole
	// batch is validated before anything mutates.
	InsertBatch(nums [][]float64, noms [][]order.Value) ([]data.PointID, error)
	// DeleteBatch tombstones ids in order, stopping at the first unknown
	// one and reporting how many landed.
	DeleteBatch(ids []data.PointID) (int, error)
}

// maintainable is implemented by engines that can expose a Maintainer.
type maintainable interface{ Maintainer() Maintainer }

// Maintainable returns the engine's maintenance interface (§4.3), or nil
// when the engine is immutable (the legacy pointer-kernel engines).
func Maintainable(e Engine) Maintainer {
	if m, ok := e.(maintainable); ok {
		return m.Maintainer()
	}
	return nil
}

// PreferenceValidator is implemented by engines whose query path rejects
// some preferences outright — a non-refinement of the template (SFS-A, the
// hybrids) or an unmaterialized value under a top-K restricted tree (bare
// IPO). ValidatePreference returns the error the engine's query path would
// return for the preference, without serving it; nil means the engine
// accepts it. Alternate serving paths (the service's semantic cache) consult
// it so that whether a query errors never depends on cache warmth.
type PreferenceValidator interface {
	ValidatePreference(pref *order.Preference) error
}

// ValidatorOf returns the engine's preference-acceptance hook, or nil when
// the engine accepts every well-formed preference (the scan engines).
func ValidatorOf(e Engine) PreferenceValidator {
	if v, ok := e.(PreferenceValidator); ok {
		return v
	}
	return nil
}

// storeBacked is implemented by engines reading a versioned columnar store.
type storeBacked interface{ Store() *flat.Store }

// StoreOf returns the versioned store the engine reads, or nil for
// immutable (pointer-kernel) engines. The store is the system of record for
// point lookups, live counts and the data version.
func StoreOf(e Engine) *flat.Store {
	if s, ok := e.(storeBacked); ok {
		return s.Store()
	}
	return nil
}

// VersionOf returns the data version the engine's query results reflect: the
// store's mutation counter, or 0 for immutable engines.
func VersionOf(e Engine) uint64 {
	if st := StoreOf(e); st != nil {
		return st.Version()
	}
	return 0
}

// Options configures engine construction for NewByName.
type Options struct {
	// Tree configures tree construction for the tree-backed kinds and is
	// ignored otherwise.
	Tree ipotree.Options
	// Partitions is the block count for the parallel kinds (0 = GOMAXPROCS)
	// and is ignored otherwise.
	Partitions int
	// Kernel selects the dominance/scan kernel for the scan-based kinds
	// (sfsd, parallel-sfs, parallel-hybrid). The zero value is KernelFlat.
	Kernel Kernel
	// CompactThreshold is the delta+tombstone row count that triggers
	// background compaction of the engine's versioned store: 0 means the
	// default (flat.DefaultCompactThreshold), negative disables automatic
	// compaction. Ignored by pointer-kernel engines.
	CompactThreshold int
	// Grid selects cell-grid pruning for the flat scans (SFS-D, the
	// parallel engines and the tree engines' stale fallback). The zero
	// value is flat.GridAuto: build the grid only for scans large enough to
	// amortize it. Ignored by pointer-kernel engines.
	Grid flat.GridMode
}

// scanFallback computes the skyline of the store's current snapshot with the
// flat SFS kernel — the path tree-backed engines take while their tree is
// stale.
func scanFallback(ctx context.Context, snap *flat.Snapshot, pref *order.Preference, grid flat.GridMode) ([]data.PointID, error) {
	cmp, err := dominance.NewComparator(snap.Schema(), pref)
	if err != nil {
		return nil, err
	}
	proj, err := snap.Project(cmp)
	if err != nil {
		return nil, err
	}
	proj.SetGridMode(grid)
	rows, err := proj.SkylineRangeCtx(ctx, 0, proj.N())
	if err != nil {
		return nil, err
	}
	return proj.IDs(rows), nil
}

// ipoEngine serves a version-gated IPO-tree over a versioned store: the tree
// answers while the snapshot version matches its build, mutations route
// queries to a flat scan of the live snapshot, and compaction rebuilds the
// tree.
type ipoEngine struct {
	name     string
	store    *flat.Store
	template *order.Preference
	opts     ipotree.Options
	grid     flat.GridMode
	vt       atomic.Pointer[ipotree.Versioned]
}

func (e *ipoEngine) Name() string { return e.name }

func (e *ipoEngine) Skyline(ctx context.Context, pref *order.Preference) ([]data.PointID, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	snap := e.store.Snapshot()
	vt := e.vt.Load()
	if vt.Version() == snap.Version() {
		return vt.Query(pref)
	}
	// Stale tree: run the query against the tree build anyway — not for its
	// result (the data moved) but for its contract. A preference the current
	// build rejects (wrong shape, not a refinement, unmaterialized values
	// under TopK) must keep failing while the tree is stale, or maintenance
	// timing would flip the same query between error and success.
	if _, err := vt.Query(pref); err != nil {
		return nil, err
	}
	return scanFallback(ctx, snap, pref, e.grid)
}

func (e *ipoEngine) SizeBytes() int { return e.vt.Load().Tree().SizeBytes() }

// Tree exposes the current tree build.
func (e *ipoEngine) Tree() *ipotree.Tree { return e.vt.Load().Tree() }

// ValidatePreference replays the query contract against the current tree
// build, exactly like the stale path: shape, template-refinement and top-K
// materialization rejections must hold regardless of how a caller plans to
// serve the result. Materialized walks the same nodes Query would without
// evaluating the set algebra, so validating costs node hops, not a skyline.
func (e *ipoEngine) ValidatePreference(pref *order.Preference) error {
	return e.vt.Load().Tree().Materialized(pref)
}

// Store implements the store-backed introspection hook.
func (e *ipoEngine) Store() *flat.Store { return e.store }

// Maintainer implements maintenance by mutating the store; the tree goes
// stale and queries scan until compaction rebuilds it.
func (e *ipoEngine) Maintainer() Maintainer { return e.store }

// rebuild is the compaction hook: rebuild the version-gated tree against the
// compacted snapshot (ipotree.RebuildInto); build failures keep the scan
// fallback serving.
func (e *ipoEngine) rebuild(snap *flat.Snapshot) {
	ipotree.RebuildInto(&e.vt, snap, e.template, e.opts)
}

// NewIPOTree builds the full "IPO Tree" engine over a private versioned
// store.
func NewIPOTree(ds *data.Dataset, template *order.Preference, opts ipotree.Options) (Engine, error) {
	if ds == nil {
		return nil, fmt.Errorf("core: nil dataset")
	}
	return newIPOTree(flat.NewStore(ds, 0), template, opts, flat.GridAuto)
}

func newIPOTree(store *flat.Store, template *order.Preference, opts ipotree.Options, grid flat.GridMode) (Engine, error) {
	name := "IPO Tree"
	if opts.TopK > 0 {
		name = fmt.Sprintf("IPO Tree-%d", opts.TopK)
	}
	snap := store.Snapshot()
	tree, ids, err := ipotree.BuildPoints(store.Schema(), snap.Points(), template, opts)
	if err != nil {
		return nil, err
	}
	e := &ipoEngine{name: name, store: store, template: tree.Template(), opts: opts, grid: grid}
	e.vt.Store(ipotree.NewVersioned(tree, snap.Version(), ids))
	store.OnCompact(e.rebuild)
	return e, nil
}

// adaptiveEngine adapts *adaptive.Engine.
type adaptiveEngine struct {
	e *adaptive.Engine
}

func (a *adaptiveEngine) Name() string { return "SFS-A" }
func (a *adaptiveEngine) Skyline(ctx context.Context, pref *order.Preference) ([]data.PointID, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return a.e.Query(pref)
}
func (a *adaptiveEngine) SizeBytes() int         { return a.e.SizeBytes() }
func (a *adaptiveEngine) Store() *flat.Store     { return a.e.Store() }
func (a *adaptiveEngine) Maintainer() Maintainer { return a.e }
func (a *adaptiveEngine) ValidatePreference(pref *order.Preference) error {
	return a.e.ValidatePreference(pref)
}

// Adaptive exposes the underlying engine (progressive iteration, stats).
func (a *adaptiveEngine) Adaptive() *adaptive.Engine { return a.e }

// NewAdaptiveSFS builds the "SFS-A" engine.
func NewAdaptiveSFS(ds *data.Dataset, template *order.Preference) (Engine, error) {
	e, err := adaptive.New(ds, template)
	if err != nil {
		return nil, err
	}
	return &adaptiveEngine{e: e}, nil
}

func newAdaptiveSFSStore(store *flat.Store, template *order.Preference) (Engine, error) {
	e, err := adaptive.NewFromStore(store, template)
	if err != nil {
		return nil, err
	}
	return &adaptiveEngine{e: e}, nil
}

// SFSD is the baseline: no per-preference preprocessing; every query sorts
// and scans the entire dataset (§5's SFS-D). On the default flat kernel the
// engine reads a versioned columnar store: each query grabs the current
// snapshot lock-free and pays only the rank projection plus the packed-key
// presort and scan, and Insert/Delete are supported through the store.
type SFSD struct {
	ds    *data.Dataset // pointer-kernel data (nil on the flat kernel)
	store *flat.Store   // nil on the pointer kernel
	grid  flat.GridMode // grid pruning for the flat scans
}

// SetGridMode selects grid pruning for the engine's scans (flat.GridAuto is
// the default). Call it at configuration time, before queries run.
func (s *SFSD) SetGridMode(m flat.GridMode) { s.grid = m }

// NewSFSD wraps a dataset as the SFS-D baseline on the default (flat) kernel.
func NewSFSD(ds *data.Dataset) (*SFSD, error) {
	return NewSFSDKernel(ds, KernelFlat)
}

// NewSFSDKernel is NewSFSD with an explicit kernel choice.
func NewSFSDKernel(ds *data.Dataset, kernel Kernel) (*SFSD, error) {
	if ds == nil {
		return nil, fmt.Errorf("core: nil dataset")
	}
	if kernel == KernelFlat {
		return &SFSD{store: flat.NewStore(ds, 0)}, nil
	}
	return &SFSD{ds: ds}, nil
}

// NewSFSDStore wraps an existing versioned store as the SFS-D baseline.
func NewSFSDStore(store *flat.Store) (*SFSD, error) {
	if store == nil {
		return nil, fmt.Errorf("core: nil store")
	}
	return &SFSD{store: store}, nil
}

// Name implements Engine.
func (s *SFSD) Name() string { return "SFS-D" }

// Skyline implements Engine by running SFS over the whole dataset.
func (s *SFSD) Skyline(ctx context.Context, pref *order.Preference) ([]data.PointID, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.store != nil {
		// The flat scan is cancellable for free, so a disconnected client or
		// expired deadline frees its worker slot mid-scan instead of burning
		// it for the full O(N) pass.
		return scanFallback(ctx, s.store.Snapshot(), pref, s.grid)
	}
	cmp, err := dominance.NewComparator(s.ds.Schema(), pref)
	if err != nil {
		return nil, err
	}
	return skyline.SFS(s.ds.Points(), cmp), nil
}

// SizeBytes implements Engine; SFS-D keeps no index (§5: "SFS-D does not use
// extra storage"). The columnar store is an alternate representation of the
// dataset itself, not preference-dependent storage — see BlockBytes.
func (s *SFSD) SizeBytes() int { return 0 }

// BlockBytes reports the columnar store's footprint (0 on the pointer
// kernel).
func (s *SFSD) BlockBytes() int {
	if s.store == nil {
		return 0
	}
	return s.store.Snapshot().SizeBytes()
}

// Store returns the versioned store (nil on the pointer kernel).
func (s *SFSD) Store() *flat.Store { return s.store }

// Maintainer returns the store-backed maintenance interface, or nil on the
// pointer kernel.
func (s *SFSD) Maintainer() Maintainer {
	if s.store == nil {
		return nil
	}
	return s.store
}

// hybridEngine adapts *hybrid.Engine.
type hybridEngine struct {
	e *hybrid.Engine
}

func (h *hybridEngine) Name() string { return "Hybrid" }
func (h *hybridEngine) Skyline(ctx context.Context, pref *order.Preference) ([]data.PointID, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return h.e.Query(pref)
}
func (h *hybridEngine) SizeBytes() int         { return h.e.SizeBytes() }
func (h *hybridEngine) Store() *flat.Store     { return h.e.Store() }
func (h *hybridEngine) Maintainer() Maintainer { return h.e }
func (h *hybridEngine) ValidatePreference(pref *order.Preference) error {
	return h.e.ValidatePreference(pref)
}

// NewHybrid builds the §5.3 hybrid: a top-K IPO-tree with SFS-A fallback.
func NewHybrid(ds *data.Dataset, template *order.Preference, treeOpts ipotree.Options) (Engine, error) {
	e, err := hybrid.New(ds, template, treeOpts)
	if err != nil {
		return nil, err
	}
	return &hybridEngine{e: e}, nil
}

func newHybridStore(store *flat.Store, template *order.Preference, treeOpts ipotree.Options) (Engine, error) {
	e, err := hybrid.NewFromStore(store, template, treeOpts)
	if err != nil {
		return nil, err
	}
	return &hybridEngine{e: e}, nil
}

// parallelEngine adapts *parallel.Engine.
type parallelEngine struct {
	e *parallel.Engine
}

func (p *parallelEngine) Name() string { return "Parallel-SFS" }
func (p *parallelEngine) Skyline(ctx context.Context, pref *order.Preference) ([]data.PointID, error) {
	return p.e.Skyline(ctx, pref)
}
func (p *parallelEngine) SizeBytes() int     { return p.e.SizeBytes() }
func (p *parallelEngine) Store() *flat.Store { return p.e.Store() }
func (p *parallelEngine) Maintainer() Maintainer {
	if st := p.e.Store(); st != nil {
		return st
	}
	return nil
}

// NewParallelSFS builds the partitioned multi-core SFS-D counterpart:
// P concurrent block scans plus a merge-filter, on the default (flat)
// kernel. partitions <= 0 defaults to GOMAXPROCS.
func NewParallelSFS(ds *data.Dataset, partitions int) (Engine, error) {
	return NewParallelSFSKernel(ds, partitions, KernelFlat)
}

// NewParallelSFSKernel is NewParallelSFS with an explicit kernel choice.
func NewParallelSFSKernel(ds *data.Dataset, partitions int, kernel Kernel) (Engine, error) {
	e, err := parallel.NewKernel(ds, partitions, kernel)
	if err != nil {
		return nil, err
	}
	return &parallelEngine{e: e}, nil
}

// parallelHybridEngine adapts *parallel.Hybrid.
type parallelHybridEngine struct {
	e *parallel.Hybrid
}

func (p *parallelHybridEngine) Name() string { return "Parallel-Hybrid" }
func (p *parallelHybridEngine) Skyline(ctx context.Context, pref *order.Preference) ([]data.PointID, error) {
	return p.e.Skyline(ctx, pref)
}
func (p *parallelHybridEngine) SizeBytes() int     { return p.e.SizeBytes() }
func (p *parallelHybridEngine) Store() *flat.Store { return p.e.Store() }
func (p *parallelHybridEngine) Maintainer() Maintainer {
	if st := p.e.Store(); st != nil {
		return st
	}
	return nil
}
func (p *parallelHybridEngine) ValidatePreference(pref *order.Preference) error {
	return p.e.ValidatePreference(pref)
}

// NewParallelHybrid builds the hybrid whose unmaterialized-value fallback is
// the partitioned scan instead of single-threaded SFS-A: tree hits stay
// instant, and the slow path uses every core (flat kernel by default).
func NewParallelHybrid(ds *data.Dataset, template *order.Preference, treeOpts ipotree.Options, partitions int) (Engine, error) {
	return NewParallelHybridKernel(ds, template, treeOpts, partitions, KernelFlat)
}

// NewParallelHybridKernel is NewParallelHybrid with an explicit kernel choice
// for the fallback scan.
func NewParallelHybridKernel(ds *data.Dataset, template *order.Preference, treeOpts ipotree.Options, partitions int, kernel Kernel) (Engine, error) {
	e, err := parallel.NewHybridKernel(ds, template, treeOpts, partitions, kernel)
	if err != nil {
		return nil, err
	}
	return &parallelHybridEngine{e: e}, nil
}

// Kinds lists the engine names NewByName accepts, in the paper's order with
// the partitioned engines last.
func Kinds() []string {
	return []string{"ipo", "sfsa", "sfsd", "hybrid", "parallel-sfs", "parallel-hybrid"}
}

// NewByName builds an engine from its configuration name, the selector used
// by the CLIs and the service registry. Accepted kinds (case-insensitive,
// with the §5 labels as synonyms):
//
//	ipo, ipotree, "ipo tree"  → NewIPOTree
//	sfsa, sfs-a               → NewAdaptiveSFS
//	sfsd, sfs-d               → NewSFSD
//	hybrid                    → NewHybrid
//	parallel-sfs, psfs        → NewParallelSFS
//	parallel-hybrid, phybrid  → NewParallelHybrid
//
// opts.Tree applies to the tree-backed kinds, opts.Partitions to the
// parallel kinds, opts.Kernel to the scan-based kinds; each is ignored
// otherwise. Unless opts.Kernel selects the legacy pointer kernel, the
// engine reads a versioned store compacting at opts.CompactThreshold and
// supports maintenance (Maintainable returns non-nil).
func NewByName(kind string, ds *data.Dataset, template *order.Preference, opts Options) (Engine, error) {
	if ds == nil {
		return nil, fmt.Errorf("core: nil dataset")
	}
	newStore := func() *flat.Store { return flat.NewStore(ds, opts.CompactThreshold) }
	switch strings.ToLower(strings.TrimSpace(kind)) {
	case "ipo", "ipotree", "ipo tree", "ipo-tree":
		return newIPOTree(newStore(), template, opts.Tree, opts.Grid)
	case "sfsa", "sfs-a":
		return newAdaptiveSFSStore(newStore(), template)
	case "sfsd", "sfs-d":
		if opts.Kernel == KernelPointer {
			return NewSFSDKernel(ds, KernelPointer)
		}
		e, err := NewSFSDStore(newStore())
		if err != nil {
			return nil, err
		}
		e.SetGridMode(opts.Grid)
		return e, nil
	case "hybrid":
		return newHybridStore(newStore(), template, opts.Tree)
	case "parallel-sfs", "parallelsfs", "parallel sfs", "psfs":
		if opts.Kernel == KernelPointer {
			return NewParallelSFSKernel(ds, opts.Partitions, KernelPointer)
		}
		e, err := parallel.NewFromStore(newStore(), opts.Partitions)
		if err != nil {
			return nil, err
		}
		e.SetGridMode(opts.Grid)
		return &parallelEngine{e: e}, nil
	case "parallel-hybrid", "parallelhybrid", "parallel hybrid", "phybrid":
		if opts.Kernel == KernelPointer {
			return NewParallelHybridKernel(ds, template, opts.Tree, opts.Partitions, KernelPointer)
		}
		e, err := parallel.NewHybridFromStore(newStore(), template, opts.Tree, opts.Partitions)
		if err != nil {
			return nil, err
		}
		e.SetGridMode(opts.Grid)
		return &parallelHybridEngine{e: e}, nil
	default:
		return nil, fmt.Errorf("core: unknown engine kind %q (want one of %s)",
			kind, strings.Join(Kinds(), ", "))
	}
}

// NewFromStore builds an engine of the given kind over an existing versioned
// store — the durability path: a recovered store exists before any engine
// does, so construction cannot route through NewByName's dataset wrapping.
// Kind names and option handling match NewByName exactly, except that the
// legacy pointer kernel is rejected: it copies points out of a dataset and
// would silently detach from the journaled store that is the system of
// record.
func NewFromStore(kind string, store *flat.Store, template *order.Preference, opts Options) (Engine, error) {
	if store == nil {
		return nil, fmt.Errorf("core: nil store")
	}
	if opts.Kernel == KernelPointer {
		return nil, fmt.Errorf("core: pointer kernel cannot serve an existing store")
	}
	switch strings.ToLower(strings.TrimSpace(kind)) {
	case "ipo", "ipotree", "ipo tree", "ipo-tree":
		return newIPOTree(store, template, opts.Tree, opts.Grid)
	case "sfsa", "sfs-a":
		return newAdaptiveSFSStore(store, template)
	case "sfsd", "sfs-d":
		e, err := NewSFSDStore(store)
		if err != nil {
			return nil, err
		}
		e.SetGridMode(opts.Grid)
		return e, nil
	case "hybrid":
		return newHybridStore(store, template, opts.Tree)
	case "parallel-sfs", "parallelsfs", "parallel sfs", "psfs":
		e, err := parallel.NewFromStore(store, opts.Partitions)
		if err != nil {
			return nil, err
		}
		e.SetGridMode(opts.Grid)
		return &parallelEngine{e: e}, nil
	case "parallel-hybrid", "parallelhybrid", "parallel hybrid", "phybrid":
		e, err := parallel.NewHybridFromStore(store, template, opts.Tree, opts.Partitions)
		if err != nil {
			return nil, err
		}
		e.SetGridMode(opts.Grid)
		return &parallelHybridEngine{e: e}, nil
	default:
		return nil, fmt.Errorf("core: unknown engine kind %q (want one of %s)",
			kind, strings.Join(Kinds(), ", "))
	}
}

// Interface conformance checks.
var (
	_ Engine          = (*ipoEngine)(nil)
	_ Engine          = (*adaptiveEngine)(nil)
	_ Engine          = (*SFSD)(nil)
	_ Engine          = (*hybridEngine)(nil)
	_ Engine          = (*parallelEngine)(nil)
	_ Engine          = (*parallelHybridEngine)(nil)
	_ Maintainer      = (*flat.Store)(nil)
	_ Maintainer      = (*adaptive.Engine)(nil)
	_ Maintainer      = (*hybrid.Engine)(nil)
	_ BatchMaintainer = (*flat.Store)(nil)
)
