// Package core assembles the paper's engines behind one interface. The
// primary contributions — IPO-Tree Search (§3) and Adaptive SFS (§4) — live
// in their own packages (internal/ipotree, internal/adaptive); core provides
// the uniform Engine view used by the public API, the CLIs and the benchmark
// harness, plus the SFS-D baseline, the hybrid of §5.3 and the partitioned
// multi-core engines of internal/parallel.
package core

import (
	"context"
	"fmt"
	"strings"

	"prefsky/internal/adaptive"
	"prefsky/internal/data"
	"prefsky/internal/dominance"
	"prefsky/internal/flat"
	"prefsky/internal/hybrid"
	"prefsky/internal/ipotree"
	"prefsky/internal/order"
	"prefsky/internal/parallel"
	"prefsky/internal/skyline"
)

// Kernel re-exports the scan-kernel selector: KernelFlat (columnar block +
// per-query rank projection, the default) or KernelPointer (the original
// per-point slice kernel). It applies to the scan-based kinds — sfsd,
// parallel-sfs and parallel-hybrid's fallback.
type Kernel = flat.Kernel

// Kernel choices for Options.Kernel.
const (
	KernelFlat    = flat.KernelFlat
	KernelPointer = flat.KernelPointer
)

// Engine answers implicit-preference skyline queries.
type Engine interface {
	// Name identifies the algorithm (the labels of §5: "IPO Tree",
	// "IPO Tree-10", "SFS-A", "SFS-D", "Hybrid", plus the partitioned
	// "Parallel-SFS" and "Parallel-Hybrid").
	Name() string
	// Skyline returns SKY(R̃′) as ascending point ids. The context bounds
	// the query: engines observe cancellation at least on entry, and the
	// partitioned engines abort between blocks, returning ctx.Err().
	Skyline(ctx context.Context, pref *order.Preference) ([]data.PointID, error)
	// SizeBytes reports the storage the engine retains beyond the dataset.
	SizeBytes() int
}

// Options configures engine construction for NewByName.
type Options struct {
	// Tree configures tree construction for the tree-backed kinds and is
	// ignored otherwise.
	Tree ipotree.Options
	// Partitions is the block count for the parallel kinds (0 = GOMAXPROCS)
	// and is ignored otherwise.
	Partitions int
	// Kernel selects the dominance/scan kernel for the scan-based kinds
	// (sfsd, parallel-sfs, parallel-hybrid). The zero value is KernelFlat.
	Kernel Kernel
}

// ipoEngine adapts *ipotree.Tree.
type ipoEngine struct {
	tree *ipotree.Tree
	name string
}

func (e *ipoEngine) Name() string { return e.name }
func (e *ipoEngine) Skyline(ctx context.Context, pref *order.Preference) ([]data.PointID, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.tree.Query(pref)
}
func (e *ipoEngine) SizeBytes() int { return e.tree.SizeBytes() }

// Tree exposes the underlying tree.
func (e *ipoEngine) Tree() *ipotree.Tree { return e.tree }

// NewIPOTree builds the full "IPO Tree" engine.
func NewIPOTree(ds *data.Dataset, template *order.Preference, opts ipotree.Options) (Engine, error) {
	name := "IPO Tree"
	if opts.TopK > 0 {
		name = fmt.Sprintf("IPO Tree-%d", opts.TopK)
	}
	tree, err := ipotree.Build(ds, template, opts)
	if err != nil {
		return nil, err
	}
	return &ipoEngine{tree: tree, name: name}, nil
}

// adaptiveEngine adapts *adaptive.Engine.
type adaptiveEngine struct {
	e *adaptive.Engine
}

func (a *adaptiveEngine) Name() string { return "SFS-A" }
func (a *adaptiveEngine) Skyline(ctx context.Context, pref *order.Preference) ([]data.PointID, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return a.e.Query(pref)
}
func (a *adaptiveEngine) SizeBytes() int { return a.e.SizeBytes() }

// NewAdaptiveSFS builds the "SFS-A" engine.
func NewAdaptiveSFS(ds *data.Dataset, template *order.Preference) (Engine, error) {
	e, err := adaptive.New(ds, template)
	if err != nil {
		return nil, err
	}
	return &adaptiveEngine{e: e}, nil
}

// SFSD is the baseline: no per-preference preprocessing; every query sorts
// and scans the entire dataset (§5's SFS-D). On the default flat kernel the
// dataset is laid out columnar once at construction, so each query pays only
// the rank projection plus the packed-key presort and scan.
type SFSD struct {
	ds  *data.Dataset
	blk *flat.Block // nil on the pointer kernel
}

// NewSFSD wraps a dataset as the SFS-D baseline on the default (flat) kernel.
func NewSFSD(ds *data.Dataset) (*SFSD, error) {
	return NewSFSDKernel(ds, KernelFlat)
}

// NewSFSDKernel is NewSFSD with an explicit kernel choice.
func NewSFSDKernel(ds *data.Dataset, kernel Kernel) (*SFSD, error) {
	if ds == nil {
		return nil, fmt.Errorf("core: nil dataset")
	}
	s := &SFSD{ds: ds}
	if kernel == KernelFlat {
		s.blk = flat.NewBlock(ds)
	}
	return s, nil
}

// Name implements Engine.
func (s *SFSD) Name() string { return "SFS-D" }

// Skyline implements Engine by running SFS over the whole dataset.
func (s *SFSD) Skyline(ctx context.Context, pref *order.Preference) ([]data.PointID, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cmp, err := dominance.NewComparator(s.ds.Schema(), pref)
	if err != nil {
		return nil, err
	}
	if s.blk != nil {
		proj, err := s.blk.Project(cmp)
		if err != nil {
			return nil, err
		}
		// The flat scan is cancellable for free, so a disconnected client or
		// expired deadline frees its worker slot mid-scan instead of burning
		// it for the full O(N) pass.
		rows, err := proj.SkylineRangeCtx(ctx, 0, proj.N())
		if err != nil {
			return nil, err
		}
		return proj.IDs(rows), nil
	}
	return skyline.SFS(s.ds.Points(), cmp), nil
}

// SizeBytes implements Engine; SFS-D keeps no index (§5: "SFS-D does not use
// extra storage"). The columnar block is an alternate representation of the
// dataset itself, not preference-dependent storage — see BlockBytes.
func (s *SFSD) SizeBytes() int { return 0 }

// BlockBytes reports the columnar mirror's footprint (0 on the pointer
// kernel).
func (s *SFSD) BlockBytes() int {
	if s.blk == nil {
		return 0
	}
	return s.blk.SizeBytes()
}

// hybridEngine adapts *hybrid.Engine.
type hybridEngine struct {
	e *hybrid.Engine
}

func (h *hybridEngine) Name() string { return "Hybrid" }
func (h *hybridEngine) Skyline(ctx context.Context, pref *order.Preference) ([]data.PointID, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return h.e.Query(pref)
}
func (h *hybridEngine) SizeBytes() int { return h.e.SizeBytes() }

// NewHybrid builds the §5.3 hybrid: a top-K IPO-tree with SFS-A fallback.
func NewHybrid(ds *data.Dataset, template *order.Preference, treeOpts ipotree.Options) (Engine, error) {
	e, err := hybrid.New(ds, template, treeOpts)
	if err != nil {
		return nil, err
	}
	return &hybridEngine{e: e}, nil
}

// parallelEngine adapts *parallel.Engine.
type parallelEngine struct {
	e *parallel.Engine
}

func (p *parallelEngine) Name() string { return "Parallel-SFS" }
func (p *parallelEngine) Skyline(ctx context.Context, pref *order.Preference) ([]data.PointID, error) {
	return p.e.Skyline(ctx, pref)
}
func (p *parallelEngine) SizeBytes() int { return p.e.SizeBytes() }

// NewParallelSFS builds the partitioned multi-core SFS-D counterpart:
// P concurrent block scans plus a merge-filter, on the default (flat)
// kernel. partitions <= 0 defaults to GOMAXPROCS.
func NewParallelSFS(ds *data.Dataset, partitions int) (Engine, error) {
	return NewParallelSFSKernel(ds, partitions, KernelFlat)
}

// NewParallelSFSKernel is NewParallelSFS with an explicit kernel choice.
func NewParallelSFSKernel(ds *data.Dataset, partitions int, kernel Kernel) (Engine, error) {
	e, err := parallel.NewKernel(ds, partitions, kernel)
	if err != nil {
		return nil, err
	}
	return &parallelEngine{e: e}, nil
}

// parallelHybridEngine adapts *parallel.Hybrid.
type parallelHybridEngine struct {
	e *parallel.Hybrid
}

func (p *parallelHybridEngine) Name() string { return "Parallel-Hybrid" }
func (p *parallelHybridEngine) Skyline(ctx context.Context, pref *order.Preference) ([]data.PointID, error) {
	return p.e.Skyline(ctx, pref)
}
func (p *parallelHybridEngine) SizeBytes() int { return p.e.SizeBytes() }

// NewParallelHybrid builds the hybrid whose unmaterialized-value fallback is
// the partitioned scan instead of single-threaded SFS-A: tree hits stay
// instant, and the slow path uses every core (flat kernel by default).
func NewParallelHybrid(ds *data.Dataset, template *order.Preference, treeOpts ipotree.Options, partitions int) (Engine, error) {
	return NewParallelHybridKernel(ds, template, treeOpts, partitions, KernelFlat)
}

// NewParallelHybridKernel is NewParallelHybrid with an explicit kernel choice
// for the fallback scan.
func NewParallelHybridKernel(ds *data.Dataset, template *order.Preference, treeOpts ipotree.Options, partitions int, kernel Kernel) (Engine, error) {
	e, err := parallel.NewHybridKernel(ds, template, treeOpts, partitions, kernel)
	if err != nil {
		return nil, err
	}
	return &parallelHybridEngine{e: e}, nil
}

// Kinds lists the engine names NewByName accepts, in the paper's order with
// the partitioned engines last.
func Kinds() []string {
	return []string{"ipo", "sfsa", "sfsd", "hybrid", "parallel-sfs", "parallel-hybrid"}
}

// NewByName builds an engine from its configuration name, the selector used
// by the CLIs and the service registry. Accepted kinds (case-insensitive,
// with the §5 labels as synonyms):
//
//	ipo, ipotree, "ipo tree"  → NewIPOTree
//	sfsa, sfs-a               → NewAdaptiveSFS
//	sfsd, sfs-d               → NewSFSD
//	hybrid                    → NewHybrid
//	parallel-sfs, psfs        → NewParallelSFS
//	parallel-hybrid, phybrid  → NewParallelHybrid
//
// opts.Tree applies to the tree-backed kinds, opts.Partitions to the
// parallel kinds, opts.Kernel to the scan-based kinds; each is ignored
// otherwise.
func NewByName(kind string, ds *data.Dataset, template *order.Preference, opts Options) (Engine, error) {
	switch strings.ToLower(strings.TrimSpace(kind)) {
	case "ipo", "ipotree", "ipo tree", "ipo-tree":
		return NewIPOTree(ds, template, opts.Tree)
	case "sfsa", "sfs-a":
		return NewAdaptiveSFS(ds, template)
	case "sfsd", "sfs-d":
		return NewSFSDKernel(ds, opts.Kernel)
	case "hybrid":
		return NewHybrid(ds, template, opts.Tree)
	case "parallel-sfs", "parallelsfs", "parallel sfs", "psfs":
		return NewParallelSFSKernel(ds, opts.Partitions, opts.Kernel)
	case "parallel-hybrid", "parallelhybrid", "parallel hybrid", "phybrid":
		return NewParallelHybridKernel(ds, template, opts.Tree, opts.Partitions, opts.Kernel)
	default:
		return nil, fmt.Errorf("core: unknown engine kind %q (want one of %s)",
			kind, strings.Join(Kinds(), ", "))
	}
}

// Maintainable returns the underlying Adaptive SFS engine when e supports
// incremental maintenance (Insert/Delete, §4.3), or nil otherwise. Only the
// SFS-A engine qualifies: maintaining the hybrid's adaptive half without
// rebuilding its tree would let the two halves disagree.
func Maintainable(e Engine) *adaptive.Engine {
	if a, ok := e.(*adaptiveEngine); ok {
		return a.e
	}
	return nil
}

// Interface conformance checks.
var (
	_ Engine = (*ipoEngine)(nil)
	_ Engine = (*adaptiveEngine)(nil)
	_ Engine = (*SFSD)(nil)
	_ Engine = (*hybridEngine)(nil)
	_ Engine = (*parallelEngine)(nil)
	_ Engine = (*parallelHybridEngine)(nil)
)
