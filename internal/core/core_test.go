package core

import (
	"context"
	"reflect"
	"testing"

	"prefsky/internal/data"
	"prefsky/internal/ipotree"
	"prefsky/internal/order"
)

func engines(t *testing.T) []Engine {
	t.Helper()
	ds := data.Table1()
	tmpl := ds.Schema().EmptyPreference()
	ipo, err := NewIPOTree(ds, tmpl, ipotree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sfsa, err := NewAdaptiveSFS(ds, tmpl)
	if err != nil {
		t.Fatal(err)
	}
	sfsd, err := NewSFSD(ds)
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := NewHybrid(ds, tmpl, ipotree.Options{TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	psfs, err := NewParallelSFS(ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	phyb, err := NewParallelHybrid(ds, tmpl, ipotree.Options{TopK: 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	return []Engine{ipo, sfsa, sfsd, hyb, psfs, phyb}
}

func TestAllEnginesAgreeOnTable2(t *testing.T) {
	schema := data.Table1().Schema()
	cases := []struct {
		pref, want string
	}{
		{"Hotel-group: T<M<*", "ac"},
		{"", "acef"},
		{"Hotel-group: H<M<*", "ace"},
		{"Hotel-group: H<M<T", "ace"},
		{"Hotel-group: H<T<*", "ac"},
		{"Hotel-group: M<*", "acef"},
	}
	for _, e := range engines(t) {
		for _, c := range cases {
			pref, err := data.ParsePreference(schema, c.pref)
			if err != nil {
				t.Fatal(err)
			}
			got, err := e.Skyline(context.Background(), pref)
			if err != nil {
				t.Fatalf("%s: Skyline(%q): %v", e.Name(), c.pref, err)
			}
			want := make([]data.PointID, len(c.want))
			for i, r := range c.want {
				want[i] = data.PointID(r - 'a')
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s: Skyline(%q) = %v, want %v", e.Name(), c.pref, got, want)
			}
		}
	}
}

func TestEngineNames(t *testing.T) {
	want := []string{"IPO Tree", "SFS-A", "SFS-D", "Hybrid", "Parallel-SFS", "Parallel-Hybrid"}
	for i, e := range engines(t) {
		if e.Name() != want[i] {
			t.Errorf("engine %d name = %q, want %q", i, e.Name(), want[i])
		}
	}
	ds := data.Table1()
	topk, err := NewIPOTree(ds, ds.Schema().EmptyPreference(), ipotree.Options{TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if topk.Name() != "IPO Tree-2" {
		t.Errorf("TopK name = %q", topk.Name())
	}
}

func TestStorageOrdering(t *testing.T) {
	// SFS-D and Parallel-SFS keep nothing; the materializing engines keep
	// something.
	es := engines(t)
	for _, e := range es {
		if e.Name() == "SFS-D" || e.Name() == "Parallel-SFS" {
			if e.SizeBytes() != 0 {
				t.Errorf("%s SizeBytes = %d, want 0", e.Name(), e.SizeBytes())
			}
		} else if e.SizeBytes() <= 0 {
			t.Errorf("%s SizeBytes = %d, want > 0", e.Name(), e.SizeBytes())
		}
	}
}

func TestConstructorErrors(t *testing.T) {
	if _, err := NewSFSD(nil); err == nil {
		t.Error("NewSFSD(nil) accepted")
	}
	if _, err := NewIPOTree(nil, nil, ipotree.Options{}); err == nil {
		t.Error("NewIPOTree(nil) accepted")
	}
	if _, err := NewAdaptiveSFS(nil, nil); err == nil {
		t.Error("NewAdaptiveSFS(nil) accepted")
	}
	if _, err := NewHybrid(nil, nil, ipotree.Options{}); err == nil {
		t.Error("NewHybrid(nil) accepted")
	}
	if _, err := NewParallelSFS(nil, 2); err == nil {
		t.Error("NewParallelSFS(nil) accepted")
	}
	if _, err := NewParallelHybrid(nil, nil, ipotree.Options{}, 2); err == nil {
		t.Error("NewParallelHybrid(nil) accepted")
	}
}

func TestNewByName(t *testing.T) {
	ds := data.Table1()
	tmpl := ds.Schema().EmptyPreference()
	cases := map[string]string{
		"ipo":     "IPO Tree",
		"IPOTree": "IPO Tree",
		"sfsa":    "SFS-A",
		"SFS-A":   "SFS-A",
		"sfsd":    "SFS-D",
		"sfs-d":   "SFS-D",
		"hybrid":  "Hybrid",

		"parallel-sfs":    "Parallel-SFS",
		"psfs":            "Parallel-SFS",
		"parallel-hybrid": "Parallel-Hybrid",
		"phybrid":         "Parallel-Hybrid",
	}
	for kind, want := range cases {
		e, err := NewByName(kind, ds, tmpl, Options{Partitions: 2})
		if err != nil {
			t.Fatalf("NewByName(%q): %v", kind, err)
		}
		if e.Name() != want {
			t.Errorf("NewByName(%q).Name() = %q, want %q", kind, e.Name(), want)
		}
	}
	if _, err := NewByName("bogus", ds, tmpl, Options{}); err == nil {
		t.Error("NewByName(bogus) succeeded, want error")
	}
	for _, kind := range Kinds() {
		if _, err := NewByName(kind, ds, tmpl, Options{}); err != nil {
			t.Errorf("NewByName(%q) from Kinds(): %v", kind, err)
		}
	}
}

// TestCanceledContextRejected: every engine refuses an already-canceled
// context instead of doing work.
func TestCanceledContextRejected(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pref := data.Table1().Schema().EmptyPreference()
	for _, e := range engines(t) {
		if _, err := e.Skyline(ctx, pref); err == nil {
			t.Errorf("%s: Skyline with canceled context succeeded", e.Name())
		}
	}
}

func TestMaintainable(t *testing.T) {
	ds := data.Table1()
	tmpl := ds.Schema().EmptyPreference()
	// Every kind on the default flat kernel is maintainable and store-backed.
	for _, kind := range Kinds() {
		e, err := NewByName(kind, ds, tmpl, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if Maintainable(e) == nil {
			t.Errorf("Maintainable(%s) = nil, want maintainer", kind)
		}
		if StoreOf(e) == nil {
			t.Errorf("StoreOf(%s) = nil, want versioned store", kind)
		}
	}
	// The legacy pointer-kernel engines stay immutable.
	sfsd, err := NewSFSDKernel(ds, KernelPointer)
	if err != nil {
		t.Fatal(err)
	}
	if Maintainable(sfsd) != nil {
		t.Error("Maintainable(pointer SFS-D) != nil")
	}
	if StoreOf(sfsd) != nil || VersionOf(sfsd) != 0 {
		t.Error("pointer SFS-D reports a store or non-zero version")
	}
}

// TestKernelOptionAgreement: the pointer-kernel engines built through
// Options agree with the default flat-kernel engines on Table 2.
func TestKernelOptionAgreement(t *testing.T) {
	ds := data.Table1()
	tmpl := ds.Schema().EmptyPreference()
	for _, kind := range []string{"sfsd", "parallel-sfs", "parallel-hybrid"} {
		flatEng, err := NewByName(kind, ds, tmpl, Options{Partitions: 3, Kernel: KernelFlat})
		if err != nil {
			t.Fatal(err)
		}
		ptrEng, err := NewByName(kind, ds, tmpl, Options{Partitions: 3, Kernel: KernelPointer})
		if err != nil {
			t.Fatal(err)
		}
		for _, spec := range []string{"", "Hotel-group: T<M<*", "Hotel-group: H<M<T"} {
			pref, err := data.ParsePreference(ds.Schema(), spec)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ptrEng.Skyline(context.Background(), pref)
			if err != nil {
				t.Fatal(err)
			}
			got, err := flatEng.Skyline(context.Background(), pref)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s %q: flat %v, pointer %v", kind, spec, got, want)
			}
		}
	}
}

// TestSFSDFlatCancelsMidScan: the flat SFS-D path threads the query context
// into the scan, so an already-canceled context aborts with ctx.Err() even
// past the entry check.
func TestSFSDFlatCancelsMidScan(t *testing.T) {
	ds := data.Table1()
	e, err := NewSFSDKernel(ds, KernelFlat)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Skyline(ctx, ds.Schema().EmptyPreference()); err == nil {
		t.Fatal("canceled context accepted")
	}
}

// TestMaintenanceAcrossKinds: every flat-kernel engine kind applies §4.3
// maintenance — a dominating insert takes over the skyline, a delete
// restores it — and after compaction the tree-backed engines serve through a
// rebuilt, id-remapped tree with identical results.
func TestMaintenanceAcrossKinds(t *testing.T) {
	ctx := context.Background()
	for _, kind := range Kinds() {
		ds := data.Table1()
		tmpl := ds.Schema().EmptyPreference()
		e, err := NewByName(kind, ds, tmpl, Options{Tree: ipotree.Options{}, Partitions: 2, CompactThreshold: -1})
		if err != nil {
			t.Fatal(err)
		}
		m := Maintainable(e)
		if m == nil {
			t.Fatalf("%s: not maintainable", kind)
		}
		pref, err := data.ParsePreference(ds.Schema(), "Hotel-group: T<M<*")
		if err != nil {
			t.Fatal(err)
		}
		before, err := e.Skyline(ctx, pref)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}

		// Under T<M<*, a free 5-star hotel of group T dominates every
		// Table-1 point (T's rank is strictly best and its numerics are).
		id, err := m.Insert([]float64{0, -5}, []order.Value{0})
		if err != nil {
			t.Fatalf("%s: Insert: %v", kind, err)
		}
		got, err := e.Skyline(ctx, pref)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if !reflect.DeepEqual(got, []data.PointID{id}) {
			t.Errorf("%s: skyline after dominating insert = %v, want [%d]", kind, got, id)
		}
		if VersionOf(e) != 1 {
			t.Errorf("%s: version = %d, want 1", kind, VersionOf(e))
		}

		// Delete an original point too, then compact: the store rewrites its
		// base layout (ids no longer equal rows) and the tree-backed engines
		// rebuild their tree against it — results must not change.
		if err := m.Delete(0); err != nil {
			t.Fatalf("%s: Delete: %v", kind, err)
		}
		want, err := e.Skyline(ctx, pref)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		StoreOf(e).Compact()
		snap := StoreOf(e).Snapshot()
		if snap.DeltaRows() != 0 || snap.Tombstones() != 0 {
			t.Errorf("%s: compaction left delta %d dead %d", kind, snap.DeltaRows(), snap.Tombstones())
		}
		got, err = e.Skyline(ctx, pref)
		if err != nil {
			t.Fatalf("%s: post-compaction: %v", kind, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: post-compaction skyline = %v, want %v", kind, got, want)
		}

		// Delete the dominator: the original skyline (minus point 0, which
		// may promote others) must be a valid restoration — compare against
		// a fresh SFS-D oracle over the live points.
		if err := m.Delete(id); err != nil {
			t.Fatalf("%s: Delete(%d): %v", kind, id, err)
		}
		oracleDS, err := data.New(ds.Schema(), StoreOf(e).Snapshot().Points())
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := NewSFSDKernel(oracleDS, KernelPointer)
		if err != nil {
			t.Fatal(err)
		}
		wantIdx, err := oracle.Skyline(ctx, pref)
		if err != nil {
			t.Fatal(err)
		}
		// The oracle re-indexed ids; remap through the live points.
		live := StoreOf(e).Snapshot().Points()
		wantIDs := make([]data.PointID, len(wantIdx))
		for i, idx := range wantIdx {
			wantIDs[i] = live[idx].ID
		}
		got, err = e.Skyline(ctx, pref)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if !reflect.DeepEqual(got, wantIDs) {
			t.Errorf("%s: skyline after deletes = %v, want %v", kind, got, wantIDs)
		}
		_ = before
	}
}

// TestIPOStaleContractConsistent: on a TopK-restricted bare ipo engine, a
// query naming an unmaterialized value fails identically before maintenance,
// while the tree is stale, and after compaction rebuilds the tree —
// maintenance timing never flips it between error and success.
func TestIPOStaleContractConsistent(t *testing.T) {
	ctx := context.Background()
	ds := data.Table1()
	tmpl := ds.Schema().EmptyPreference()
	// Materialize only {T, M}: any preference naming H is unmaterialized.
	e, err := NewByName("ipo", ds, tmpl, Options{
		Tree:             ipotree.Options{Values: [][]order.Value{{0, 2}}},
		CompactThreshold: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	unmat, err := data.ParsePreference(ds.Schema(), "Hotel-group: H<*")
	if err != nil {
		t.Fatal(err)
	}
	mat, err := data.ParsePreference(ds.Schema(), "Hotel-group: T<*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Skyline(ctx, unmat); err == nil {
		t.Fatal("unmaterialized query succeeded on the fresh tree")
	}
	if _, err := Maintainable(e).Insert([]float64{0, -5}, []order.Value{0}); err != nil {
		t.Fatal(err)
	}
	// Tree is stale now: materialized queries scan, unmaterialized ones
	// must keep failing.
	if _, err := e.Skyline(ctx, mat); err != nil {
		t.Fatalf("materialized query on stale tree: %v", err)
	}
	if _, err := e.Skyline(ctx, unmat); err == nil {
		t.Error("unmaterialized query succeeded while the tree was stale")
	}
	StoreOf(e).Compact()
	if _, err := e.Skyline(ctx, unmat); err == nil {
		t.Error("unmaterialized query succeeded after compaction")
	}
	if _, err := e.Skyline(ctx, mat); err != nil {
		t.Fatalf("materialized query after compaction: %v", err)
	}
}
