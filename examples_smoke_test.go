package prefsky_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestExamplesRun executes every example program end to end and sanity-checks
// its output. Skipped with -short (each `go run` costs a compile).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping example execution in -short mode")
	}
	root, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		want []string
	}{
		{"quickstart", []string{"Alice", "[a c]", "Fred", "[a c e f]"}},
		{"vacation", []string{"21 nodes", "QD", "[a c e f]"}},
		{"realty", []string{"indexed 5000 listings", "non-dominated listings"}},
		{"flights", []string{"streamed progressively", "after maintenance"}},
		{"nursery", []string{"12960 instances", "SFS-D"}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			cmd := exec.Command("go", "run", "./"+filepath.Join("examples", c.name))
			cmd.Dir = root
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run failed: %v\n%s", err, out)
			}
			for _, want := range c.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("output missing %q:\n%s", want, out)
				}
			}
		})
	}
}
