// Theorem-level property tests: the paper's formal claims checked directly on
// random data through the public API and the reference comparators, rather
// than through any particular engine.
package prefsky_test

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"prefsky"
	"prefsky/internal/data"
	"prefsky/internal/dominance"
	"prefsky/internal/order"
	"prefsky/internal/skyline"
)

// randomTheoremFixture builds a random mixed dataset plus RNG.
func randomTheoremFixture(seed int64) (*prefsky.Dataset, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	numDims := 1 + rng.Intn(2)
	nomDims := 1 + rng.Intn(2)
	numeric := make([]prefsky.NumericAttr, numDims)
	for i := range numeric {
		numeric[i] = prefsky.NumericAttr{Name: string(rune('A' + i))}
	}
	nominal := make([]*prefsky.Domain, nomDims)
	cards := make([]int, nomDims)
	for i := range nominal {
		cards[i] = 3 + rng.Intn(3)
		d, _ := order.NewAnonymousDomain(string(rune('N'+i)), cards[i])
		nominal[i] = d
	}
	schema, _ := prefsky.NewSchema(numeric, nominal)
	pts := make([]prefsky.Point, 10+rng.Intn(50))
	for i := range pts {
		num := make([]float64, numDims)
		for d := range num {
			num[d] = float64(rng.Intn(6))
		}
		nom := make([]prefsky.Value, nomDims)
		for d := range nom {
			nom[d] = prefsky.Value(rng.Intn(cards[d]))
		}
		pts[i] = prefsky.Point{Num: num, Nom: nom}
	}
	ds, _ := prefsky.NewDataset(schema, pts)
	return ds, rng
}

func randomImplicitOn(rng *rand.Rand, card int) *prefsky.Implicit {
	x := rng.Intn(card + 1)
	entries := make([]prefsky.Value, x)
	for i, v := range rng.Perm(card)[:x] {
		entries[i] = prefsky.Value(v)
	}
	ip, _ := prefsky.NewImplicit(card, entries...)
	return ip
}

func skylineOf(ds *prefsky.Dataset, pref *prefsky.Preference) []prefsky.PointID {
	cmp, err := prefsky.NewComparator(ds.Schema(), pref)
	if err != nil {
		panic(err)
	}
	return skyline.SFS(ds.Points(), cmp)
}

// TestProperty1Refinement: R ⊆ R′ iff Ri ⊆ R′i for every dimension — the
// dimension-wise refinement characterization.
func TestProperty1Refinement(t *testing.T) {
	f := func(seed int64) bool {
		ds, rng := randomTheoremFixture(seed)
		schema := ds.Schema()
		nom := schema.NomDims()
		a := make([]*prefsky.Implicit, nom)
		b := make([]*prefsky.Implicit, nom)
		for d := 0; d < nom; d++ {
			a[d] = randomImplicitOn(rng, schema.Nominal[d].Cardinality())
			b[d] = randomImplicitOn(rng, schema.Nominal[d].Cardinality())
		}
		pa, _ := prefsky.NewPreference(a...)
		pb, _ := prefsky.NewPreference(b...)
		// Dimension-wise refinement of the materialized partial orders
		// (the right-hand side of Property 1)…
		perDim := true
		for d := 0; d < nom; d++ {
			if !pa.Dim(d).PartialOrder().Refines(pb.Dim(d).PartialOrder()) {
				perDim = false
				break
			}
		}
		// …must agree with the implicit-level Refines used throughout the
		// engines (prefix containment with the x=k boundary case).
		return pa.Refines(pb) == perDim
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestTheorem1Monotonicity: if p ∉ SKY(R), then p ∉ SKY(R′) for any
// refinement R′ ⊇ R — equivalently SKY(R′) ⊆ SKY(R).
func TestTheorem1Monotonicity(t *testing.T) {
	f := func(seed int64) bool {
		ds, rng := randomTheoremFixture(seed)
		schema := ds.Schema()
		base := make([]*prefsky.Implicit, schema.NomDims())
		refined := make([]*prefsky.Implicit, schema.NomDims())
		for d := 0; d < schema.NomDims(); d++ {
			card := schema.Nominal[d].Cardinality()
			full := randomImplicitOn(rng, card)
			base[d] = full.Prefix(rng.Intn(full.Order() + 1))
			refined[d] = full
		}
		pBase, _ := prefsky.NewPreference(base...)
		pRef, _ := prefsky.NewPreference(refined...)
		if !pRef.Refines(pBase) {
			return false
		}
		skyBase := skylineOf(ds, pBase)
		inBase := make(map[prefsky.PointID]bool, len(skyBase))
		for _, id := range skyBase {
			inBase[id] = true
		}
		for _, id := range skylineOf(ds, pRef) {
			if !inBase[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestTheorem2MergingProperty checks the merging equation exactly as stated:
// for R̃′ and R̃′′ differing only at dimension i with R̃′_i = v1…v_{x−1}≺* and
// R̃′′_i = vx≺*,
//
//	SKY(R̃′′′) = (SKY(R̃′) ∩ SKY(R̃′′)) ∪ PSKY(R̃′)
//
// where R̃′′′ extends R̃′_i with vx and PSKY(R̃′) holds the skyline points of
// R̃′ with dimension-i values among v1…v_{x−1}.
func TestTheorem2MergingProperty(t *testing.T) {
	f := func(seed int64) bool {
		ds, rng := randomTheoremFixture(seed)
		schema := ds.Schema()
		nom := schema.NomDims()
		i := rng.Intn(nom)
		cardI := schema.Nominal[i].Cardinality()

		// Shared preferences on the other dimensions.
		dims := make([]*prefsky.Implicit, nom)
		for d := 0; d < nom; d++ {
			if d == i {
				continue
			}
			dims[d] = randomImplicitOn(rng, schema.Nominal[d].Cardinality())
		}
		// Dimension i: x ≥ 2 values v1..vx.
		x := 2 + rng.Intn(cardI-1)
		vals := make([]prefsky.Value, x)
		for j, v := range rng.Perm(cardI)[:x] {
			vals[j] = prefsky.Value(v)
		}
		prefixIP, _ := prefsky.NewImplicit(cardI, vals[:x-1]...)
		lastIP, _ := prefsky.NewImplicit(cardI, vals[x-1])
		fullIP, _ := prefsky.NewImplicit(cardI, vals...)

		mk := func(ip *prefsky.Implicit) *prefsky.Preference {
			out := make([]*prefsky.Implicit, nom)
			copy(out, dims)
			out[i] = ip
			p, _ := prefsky.NewPreference(out...)
			return p
		}
		skyPrefix := skylineOf(ds, mk(prefixIP)) // SKY(R̃′)
		skyLast := skylineOf(ds, mk(lastIP))     // SKY(R̃′′)
		skyFull := skylineOf(ds, mk(fullIP))     // SKY(R̃′′′)

		inLast := make(map[prefsky.PointID]bool, len(skyLast))
		for _, id := range skyLast {
			inLast[id] = true
		}
		inPrefixVals := make(map[prefsky.Value]bool, x-1)
		for _, v := range vals[:x-1] {
			inPrefixVals[v] = true
		}
		merged := make(map[prefsky.PointID]bool)
		for _, id := range skyPrefix {
			p := ds.Point(id)
			if inLast[id] || inPrefixVals[p.Nom[i]] {
				merged[id] = true
			}
		}
		if len(merged) != len(skyFull) {
			return false
		}
		for _, id := range skyFull {
			if !merged[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestDefinition2Equivalence: dominance under the rank-based implicit
// comparator equals dominance under the materialized partial order P(R̃) —
// the two readings of Definition 2 give the same skyline.
func TestDefinition2Equivalence(t *testing.T) {
	f := func(seed int64) bool {
		ds, rng := randomTheoremFixture(seed)
		schema := ds.Schema()
		dims := make([]*prefsky.Implicit, schema.NomDims())
		for d := 0; d < schema.NomDims(); d++ {
			dims[d] = randomImplicitOn(rng, schema.Nominal[d].Cardinality())
		}
		pref, _ := prefsky.NewPreference(dims...)
		po, err := dominance.FromPreference(schema, pref)
		if err != nil {
			return false
		}
		viaRanks := skylineOf(ds, pref)
		viaOrders := skyline.Naive(ds.Points(), po)
		return reflect.DeepEqual(viaRanks, viaOrders)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestConflictFreeSymmetry: Definition 1 is symmetric.
func TestConflictFreeSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		_, rng := randomTheoremFixture(seed)
		card := 3 + rng.Intn(4)
		a := randomImplicitOn(rng, card).PartialOrder()
		b := randomImplicitOn(rng, card).PartialOrder()
		return a.ConflictFree(b) == b.ConflictFree(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestEnginesAgreeEverywhere is the capstone: for random data, templates and
// refining queries, all five implementations (IPO-tree, its bitmap form,
// Adaptive SFS, SFS-D, and the hybrid) return identical skylines.
func TestEnginesAgreeEverywhere(t *testing.T) {
	f := func(seed int64) bool {
		ds, rng := randomTheoremFixture(seed)
		schema := ds.Schema()
		// Random first-order-or-empty template.
		dims := make([]*prefsky.Implicit, schema.NomDims())
		for d := 0; d < schema.NomDims(); d++ {
			card := schema.Nominal[d].Cardinality()
			if rng.Intn(2) == 0 {
				dims[d], _ = prefsky.NewImplicit(card)
			} else {
				dims[d], _ = prefsky.NewImplicit(card, prefsky.Value(rng.Intn(card)))
			}
		}
		tmpl, _ := prefsky.NewPreference(dims...)

		ipo, err := prefsky.NewIPOTree(ds, tmpl, prefsky.TreeOptions{})
		if err != nil {
			return false
		}
		bitmap, err := prefsky.NewIPOTree(ds, tmpl, prefsky.TreeOptions{UseBitmap: true})
		if err != nil {
			return false
		}
		sfsa, err := prefsky.NewAdaptiveSFS(ds, tmpl)
		if err != nil {
			return false
		}
		sfsd, err := prefsky.NewSFSD(ds)
		if err != nil {
			return false
		}
		hyb, err := prefsky.NewHybrid(ds, tmpl, prefsky.TreeOptions{TopK: 2})
		if err != nil {
			return false
		}
		engines := []prefsky.Engine{ipo, bitmap, sfsa, sfsd, hyb}

		for trial := 0; trial < 4; trial++ {
			qdims := make([]*prefsky.Implicit, schema.NomDims())
			for d := 0; d < schema.NomDims(); d++ {
				card := schema.Nominal[d].Cardinality()
				entries := tmpl.Dim(d).Entries()
				var rest []prefsky.Value
				for v := prefsky.Value(0); int(v) < card; v++ {
					if !tmpl.Dim(d).Contains(v) {
						rest = append(rest, v)
					}
				}
				rng.Shuffle(len(rest), func(a, b int) { rest[a], rest[b] = rest[b], rest[a] })
				entries = append(entries, rest[:rng.Intn(len(rest)+1)]...)
				qdims[d], _ = prefsky.NewImplicit(card, entries...)
			}
			pref, _ := prefsky.NewPreference(qdims...)
			var want []data.PointID
			for i, e := range engines {
				got, err := e.Skyline(context.Background(), pref)
				if err != nil {
					return false
				}
				if i == 0 {
					want = got
					continue
				}
				if !reflect.DeepEqual(got, want) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
