// Quickstart: the paper's running example (Tables 1 and 2).
//
// Six vacation packages have two numeric attributes (price, hotel class) and
// one nominal attribute (hotel group). Six customers each bring their own
// implicit preference on hotel groups, and each gets a different skyline.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"prefsky"
)

func main() {
	// Build the schema: price (lower better), hotel class (higher better),
	// and the nominal hotel group {Tulips, Horizon, Mozilla}.
	hotels, err := prefsky.NewDomain("Hotel-group", []string{"T", "H", "M"})
	if err != nil {
		log.Fatal(err)
	}
	schema, err := prefsky.NewSchema(
		[]prefsky.NumericAttr{
			{Name: "Price"},
			{Name: "Hotel-class", HigherIsBetter: true},
		},
		[]*prefsky.Domain{hotels},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Table 1. HigherIsBetter attributes are stored negated, so class 4 is -4.
	type row struct {
		name  string
		price float64
		class float64
		hotel string
	}
	rows := []row{
		{"a", 1600, 4, "T"}, {"b", 2400, 1, "T"}, {"c", 3000, 5, "H"},
		{"d", 3600, 4, "H"}, {"e", 2400, 2, "M"}, {"f", 3000, 3, "M"},
	}
	points := make([]prefsky.Point, len(rows))
	for i, r := range rows {
		v, _ := hotels.Lookup(r.hotel)
		points[i] = prefsky.Point{Num: []float64{r.price, -r.class}, Nom: []prefsky.Value{v}}
	}
	ds, err := prefsky.NewDataset(schema, points)
	if err != nil {
		log.Fatal(err)
	}

	// Preprocess once against the empty template (no shared nominal orders),
	// then answer every customer's query online.
	engine, err := prefsky.NewIPOTree(ds, schema.EmptyPreference(), prefsky.TreeOptions{})
	if err != nil {
		log.Fatal(err)
	}

	customers := []struct{ name, pref string }{
		{"Alice", "Hotel-group: T<M<*"},
		{"Bob", ""},
		{"Chris", "Hotel-group: H<M<*"},
		{"David", "Hotel-group: H<M<T"},
		{"Emily", "Hotel-group: H<T<*"},
		{"Fred", "Hotel-group: M<*"},
	}
	fmt.Println("Customer  Preference            Skyline")
	for _, c := range customers {
		pref, err := prefsky.ParsePreference(schema, c.pref)
		if err != nil {
			log.Fatal(err)
		}
		ids, err := engine.Skyline(context.Background(), pref)
		if err != nil {
			log.Fatal(err)
		}
		names := make([]string, len(ids))
		for i, id := range ids {
			names[i] = rows[id].name
		}
		label := c.pref
		if label == "" {
			label = "(no special preference)"
		}
		fmt.Printf("%-9s %-21s %v\n", c.name, label, names)
	}
}
