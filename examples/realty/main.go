// Realty: the paper's motivating application — realty search where type,
// region and style are nominal attributes on which buyers disagree.
//
// A brokerage preprocesses its listings once with a hybrid engine (a top-K
// IPO-tree over the popular values with an Adaptive SFS fallback, §5.3) and
// then serves each buyer's implicit preference online.
//
// Run with: go run ./examples/realty
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"prefsky"
)

func main() {
	regions, err := prefsky.NewDomain("Region", []string{
		"Downtown", "Midtown", "Harbor", "Hills", "Suburb", "Airport", "Old-town", "Campus",
	})
	if err != nil {
		log.Fatal(err)
	}
	types, err := prefsky.NewDomain("Type", []string{"Apartment", "Townhouse", "Detached", "Loft"})
	if err != nil {
		log.Fatal(err)
	}
	schema, err := prefsky.NewSchema(
		[]prefsky.NumericAttr{
			{Name: "Price"},
			{Name: "Commute-min"},
			{Name: "Area-sqm", HigherIsBetter: true},
		},
		[]*prefsky.Domain{regions, types},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Synthesize 5,000 listings; popular regions appear more often, the way
	// real inventories skew (and what makes the top-K tree effective).
	rng := rand.New(rand.NewSource(2008))
	points := make([]prefsky.Point, 5000)
	for i := range points {
		region := prefsky.Value(rng.Intn(8) * rng.Intn(2)) // skewed toward 0
		points[i] = prefsky.Point{
			Num: []float64{
				150000 + 900000*rng.Float64(),
				5 + 85*rng.Float64(),
				-(30 + 220*rng.Float64()),
			},
			Nom: []prefsky.Value{region, prefsky.Value(rng.Intn(4))},
		}
	}
	ds, err := prefsky.NewDataset(schema, points)
	if err != nil {
		log.Fatal(err)
	}

	engine, err := prefsky.NewHybrid(ds, schema.EmptyPreference(), prefsky.TreeOptions{TopK: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d listings (engine keeps %d KB)\n\n", ds.N(), engine.SizeBytes()/1024)

	buyers := []struct{ name, pref string }{
		{"young couple", "Region: Downtown<Midtown<*; Type: Loft<Apartment<*"},
		{"family", "Region: Suburb<Hills<*; Type: Detached<Townhouse<*"},
		{"student", "Region: Campus<*; Type: Apartment<*"},
		{"investor", "Type: Apartment<*"},
	}
	for _, b := range buyers {
		pref, err := prefsky.ParsePreference(schema, b.pref)
		if err != nil {
			log.Fatal(err)
		}
		ids, err := engine.Skyline(context.Background(), pref)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %-55s -> %d non-dominated listings\n", b.name, b.pref, len(ids))
		// Show the three cheapest skyline listings.
		shown := 0
		for _, id := range ids {
			p := ds.Point(id)
			fmt.Printf("     $%.0f  %2.0f min  %3.0f sqm  %-9s %s\n",
				p.Num[0], p.Num[1], -p.Num[2],
				regions.ValueName(p.Nom[0]), types.ValueName(p.Nom[1]))
			if shown++; shown == 3 {
				break
			}
		}
	}
}
