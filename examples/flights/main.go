// Flights: flight booking with nominal airline and transit-airport
// attributes, exercising Adaptive SFS's two distinctive features —
// progressive result streaming (§4.3) and incremental maintenance as flights
// are added and sold out.
//
// Run with: go run ./examples/flights
package main

import (
	"fmt"
	"log"

	"prefsky"
)

func main() {
	// The same demo dataset cmd/skylined -demo serves: 3000 synthetic
	// flights with nominal Airline and Transit attributes.
	ds, err := prefsky.FlightsDataset(3000, 7)
	if err != nil {
		log.Fatal(err)
	}
	schema := ds.Schema()
	airlines, transits := schema.Nominal[0], schema.Nominal[1]

	// The maintainable engine exposes QueryIter and Insert/Delete.
	engine, err := prefsky.NewMaintainable(ds, schema.EmptyPreference())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d flights, skyline under template: %d\n\n", engine.N(), engine.SkylineSize())

	pref, err := prefsky.ParsePreference(schema, "Airline: Gonna<Polar<*; Transit: AMS<FRA<*")
	if err != nil {
		log.Fatal(err)
	}

	// Progressive: show the first few results as they stream, best-score
	// first — an interactive UI can render these before the scan finishes.
	it, err := engine.QueryIter(pref)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("first skyline flights, streamed progressively:")
	total := 0
	for {
		p, ok := it.Next()
		if !ok {
			break
		}
		if total < 4 {
			fmt.Printf("  $%-6.0f %4.1fh  %d stops  %-6s via %s\n",
				p.Num[0], p.Num[1], int(p.Num[2]),
				airlines.ValueName(p.Nom[0]), transits.ValueName(p.Nom[1]))
		}
		total++
	}
	fmt.Printf("  … %d flights in SKY(R̃′) overall\n\n", total)

	// Maintenance: a cheap nonstop appears; a batch of flights sells out.
	newID, err := engine.Insert([]float64{240, 9.5, 0}, []prefsky.Value{0, 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inserted promo flight %d (Gonna via AMS, $240 nonstop)\n", newID)
	for id := prefsky.PointID(0); id < 150; id++ {
		if err := engine.Delete(id); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("deleted 150 sold-out flights; %d remain, skyline now %d\n",
		engine.N(), engine.SkylineSize())

	ids, err := engine.Query(pref)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same query after maintenance: %d skyline flights\n", len(ids))
}
