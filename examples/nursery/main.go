// Nursery: the real data set of §5.2 — 12,960 nursery-school applications
// with six totally ordered attributes and two nominal ones (family form and
// number of children). The example reproduces the paper's comparison: how the
// four algorithms answer preferences of increasing order.
//
// Run with: go run ./examples/nursery
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"prefsky"
	"prefsky/internal/gen"
)

func main() {
	ds, err := prefsky.NurseryDataset()
	if err != nil {
		log.Fatal(err)
	}
	schema := ds.Schema()
	tmpl := schema.EmptyPreference()
	fmt.Printf("Nursery: %d instances, %d ordinal + %d nominal attributes\n",
		ds.N(), schema.NumDims(), schema.NomDims())

	ipo, err := prefsky.NewIPOTree(ds, tmpl, prefsky.TreeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	sfsa, err := prefsky.NewAdaptiveSFS(ds, tmpl)
	if err != nil {
		log.Fatal(err)
	}
	sfsd, err := prefsky.NewSFSD(ds)
	if err != nil {
		log.Fatal(err)
	}

	// One family's view: complete families first, fewer children preferred.
	pref, err := prefsky.ParsePreference(schema, "form: complete<completed<*; children: 1<2<*")
	if err != nil {
		log.Fatal(err)
	}
	ids, err := ipo.Skyline(context.Background(), pref)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nskyline for %q: %d applications\n",
		prefsky.FormatPreference(schema, pref), len(ids))

	// The §5.2 sweep: random preferences of order 0..3, timed per engine.
	fmt.Println("\norder   IPO Tree      SFS-A         SFS-D")
	for x := 0; x <= 3; x++ {
		queries, err := gen.Queries(schema.Cardinalities(), tmpl, gen.QueryConfig{
			Order: x, Count: 20, Mode: gen.Uniform, Seed: int64(100 + x),
		})
		if err != nil {
			log.Fatal(err)
		}
		times := make([]time.Duration, 3)
		for ei, e := range []prefsky.Engine{ipo, sfsa, sfsd} {
			start := time.Now()
			for _, q := range queries {
				if _, err := e.Skyline(context.Background(), q); err != nil {
					log.Fatal(err)
				}
			}
			times[ei] = time.Since(start) / time.Duration(len(queries))
		}
		fmt.Printf("  %d     %-13v %-13v %-13v\n", x, times[0], times[1], times[2])
	}
}
