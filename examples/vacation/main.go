// Vacation: a walkthrough of the IPO-tree machinery on the two-nominal-
// attribute data of Table 3 — the root skyline, the disqualifying sets of
// Figure 2, and the four queries of Example 1 evaluated with the merging
// property (Theorem 2).
//
// Run with: go run ./examples/vacation
package main

import (
	"fmt"
	"log"

	"prefsky"
	"prefsky/internal/data"
	"prefsky/internal/ipotree"
)

func pkgNames(ids []prefsky.PointID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = data.PackageName(id)
	}
	return out
}

func main() {
	ds := prefsky.Table3()
	schema := ds.Schema()

	// Build the tree against the empty template (Figure 2's setting).
	tree, err := ipotree.Build(ds, schema.EmptyPreference(), ipotree.Options{})
	if err != nil {
		log.Fatal(err)
	}
	stats := tree.Stats()
	fmt.Printf("IPO-tree over Table 3: %d nodes, root skyline %v\n",
		stats.Nodes, pkgNames(tree.RootSkyline()))

	// The disqualifying sets along the first-order combinations (Figure 2).
	fmt.Println("\nDisqualifying sets A (φ = no preference on that attribute):")
	hotelVals := []string{"T", "H", "M", "φ"}
	airlineVals := []string{"G", "R", "W", "φ"}
	for hi, h := range hotelVals {
		for ai, a := range airlineVals {
			labels := []prefsky.Value{prefsky.Value(hi), prefsky.Value(ai)}
			if h == "φ" {
				labels[0] = -1
			}
			if a == "φ" {
				labels[1] = -1
			}
			set, err := tree.Inspect(labels)
			if err != nil {
				log.Fatal(err)
			}
			if len(set) > 0 {
				show := func(v string) string {
					if v == "φ" {
						return "φ  "
					}
					return v + "≺*"
				}
				fmt.Printf("  %s, %s  disqualifies %v\n", show(h), show(a), pkgNames(set))
			}
		}
	}

	// Example 1: QA..QD, each answered by combining first-order nodes.
	fmt.Println("\nExample 1 queries:")
	for _, q := range []struct{ name, pref string }{
		{"QA", "Hotel-group: M<*"},
		{"QB", "Hotel-group: M<*; Airline: G<*"},
		{"QC", "Hotel-group: M<H<*; Airline: G<*"},
		{"QD", "Hotel-group: M<H<*; Airline: G<R<*"},
	} {
		pref, err := prefsky.ParsePreference(schema, q.pref)
		if err != nil {
			log.Fatal(err)
		}
		ids, err := tree.Query(pref)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s  %-42s -> %v\n", q.name, q.pref, pkgNames(ids))
	}

	// The merging property by hand: SKY(M≺H≺*) from SKY(M≺*) and SKY(H≺*).
	mPref, _ := prefsky.ParsePreference(schema, "Hotel-group: M<*")
	hPref, _ := prefsky.ParsePreference(schema, "Hotel-group: H<*")
	mhPref, _ := prefsky.ParsePreference(schema, "Hotel-group: M<H<*")
	sky1, _ := tree.Query(mPref)
	sky2, _ := tree.Query(hPref)
	sky3, _ := tree.Query(mhPref)
	fmt.Printf("\nTheorem 2: SKY(M≺*)=%v, SKY(H≺*)=%v\n", pkgNames(sky1), pkgNames(sky2))
	fmt.Printf("           SKY(M≺H≺*) = (SKY1 ∩ SKY2) ∪ PSKY1 = %v\n", pkgNames(sky3))
}
