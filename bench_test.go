// Benchmarks regenerating the paper's evaluation (§5): one family per figure,
// covering query time (the figures' panel b) with engine storage attached as
// a custom metric (panel c), plus preprocessing benches (panel a) and the
// ablations called out in DESIGN.md. Percentage metrics (panel d) are printed
// by cmd/experiments, which runs the full harness.
//
// Sizes are laptop-scale (see EXPERIMENTS.md): the paper's 500K-tuple default
// maps to 5K here and the trends, not the absolute numbers, are the target.
package prefsky_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"prefsky/internal/adaptive"
	"prefsky/internal/core"
	"prefsky/internal/data"
	"prefsky/internal/dominance"
	"prefsky/internal/gen"
	"prefsky/internal/ipotree"
	"prefsky/internal/materialized"
	"prefsky/internal/nursery"
	"prefsky/internal/order"
	"prefsky/internal/skyline"
)

// workload bundles a dataset, template and query set; engines attach lazily
// and are shared across sub-benchmarks.
type workload struct {
	ds      *data.Dataset
	tmpl    *order.Preference
	queries []*order.Preference

	once struct{ ipo, topk, sfsa, sfsd sync.Once }
	ipo  core.Engine
	topk core.Engine
	sfsa *adaptive.Engine
	sfsd *core.SFSD
}

type workloadKey struct {
	n, nomDims, card, ord int
	real                  bool
}

var (
	workloadMu    sync.Mutex
	workloadCache = map[workloadKey]*workload{}
)

// getWorkload builds (or reuses) the workload for the key. Synthetic
// workloads follow the Table 4 defaults with the frequent-value template.
func getWorkload(b *testing.B, key workloadKey) *workload {
	b.Helper()
	workloadMu.Lock()
	defer workloadMu.Unlock()
	if w, ok := workloadCache[key]; ok {
		return w
	}
	w := &workload{}
	var err error
	if key.real {
		w.ds, err = nursery.Dataset()
		if err != nil {
			b.Fatal(err)
		}
		w.tmpl = w.ds.Schema().EmptyPreference()
	} else {
		w.ds, err = gen.Dataset(gen.Config{
			N: key.n, NumDims: 3, NomDims: key.nomDims, Cardinality: key.card,
			Theta: 1, Kind: gen.AntiCorrelated, Seed: 20080101,
		})
		if err != nil {
			b.Fatal(err)
		}
		w.tmpl, err = gen.FrequentTemplate(w.ds)
		if err != nil {
			b.Fatal(err)
		}
	}
	w.queries, err = gen.Queries(w.ds.Schema().Cardinalities(), w.tmpl, gen.QueryConfig{
		Order: key.ord, Count: 16, Mode: gen.Zipfian, Theta: 1, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	workloadCache[key] = w
	return w
}

func (w *workload) ipoTree(b *testing.B) core.Engine {
	w.once.ipo.Do(func() {
		e, err := core.NewIPOTree(w.ds, w.tmpl, ipotree.Options{})
		if err != nil {
			b.Fatal(err)
		}
		w.ipo = e
	})
	return w.ipo
}

func (w *workload) ipoTopK(b *testing.B) core.Engine {
	w.once.topk.Do(func() {
		e, err := core.NewHybrid(w.ds, w.tmpl, ipotree.Options{TopK: 10})
		if err != nil {
			b.Fatal(err)
		}
		w.topk = e
	})
	return w.topk
}

func (w *workload) adaptiveSFS(b *testing.B) *adaptive.Engine {
	w.once.sfsa.Do(func() {
		e, err := adaptive.New(w.ds, w.tmpl)
		if err != nil {
			b.Fatal(err)
		}
		w.sfsa = e
	})
	return w.sfsa
}

func (w *workload) sfsD(b *testing.B) *core.SFSD {
	w.once.sfsd.Do(func() {
		e, err := core.NewSFSD(w.ds)
		if err != nil {
			b.Fatal(err)
		}
		w.sfsd = e
	})
	return w.sfsd
}

// benchQueries runs every engine's query workload as sub-benchmarks and
// reports retained storage as a custom metric (the figures' panel c).
func benchQueries(b *testing.B, w *workload, fullTree bool) {
	type bench struct {
		name    string
		storage func() int
		run     func(q *order.Preference) error
	}
	var list []bench
	if fullTree {
		e := w.ipoTree(b)
		list = append(list, bench{"IPO_Tree", e.SizeBytes, func(q *order.Preference) error {
			_, err := e.Skyline(context.Background(), q)
			return err
		}})
	}
	topk := w.ipoTopK(b)
	list = append(list, bench{"IPO_Tree-10", topk.SizeBytes, func(q *order.Preference) error {
		_, err := topk.Skyline(context.Background(), q)
		return err
	}})
	sfsa := w.adaptiveSFS(b)
	list = append(list, bench{"SFS-A", sfsa.SizeBytes, func(q *order.Preference) error {
		_, err := sfsa.Query(q)
		return err
	}})
	sfsd := w.sfsD(b)
	list = append(list, bench{"SFS-D", sfsd.SizeBytes, func(q *order.Preference) error {
		_, err := sfsd.Skyline(context.Background(), q)
		return err
	}})
	for _, bb := range list {
		b.Run(bb.name, func(b *testing.B) {
			b.ReportMetric(float64(bb.storage()), "storage-B")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := bb.run(w.queries[i%len(w.queries)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure4 — query time vs database size (paper: 250K..1000K tuples,
// here ×1/100).
func BenchmarkFigure4(b *testing.B) {
	for _, n := range []int{2500, 5000, 7500, 10000} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			w := getWorkload(b, workloadKey{n: n, nomDims: 2, card: 20, ord: 3})
			benchQueries(b, w, true)
		})
	}
}

// BenchmarkFigure5 — query time vs dimensionality (3 numeric + 1..4 nominal).
// Cardinality is reduced to 10 so the full tree stays buildable at 7 dims.
func BenchmarkFigure5(b *testing.B) {
	for nom := 1; nom <= 4; nom++ {
		b.Run(fmt.Sprintf("dims=%d", 3+nom), func(b *testing.B) {
			w := getWorkload(b, workloadKey{n: 2000, nomDims: nom, card: 10, ord: 3})
			benchQueries(b, w, nom <= 3)
		})
	}
}

// BenchmarkFigure6 — query time vs nominal cardinality (10..40).
func BenchmarkFigure6(b *testing.B) {
	for _, card := range []int{10, 20, 30, 40} {
		b.Run(fmt.Sprintf("card=%d", card), func(b *testing.B) {
			w := getWorkload(b, workloadKey{n: 2500, nomDims: 2, card: card, ord: 3})
			benchQueries(b, w, true)
		})
	}
}

// BenchmarkFigure7 — query time vs order of the implicit preference (1..4).
func BenchmarkFigure7(b *testing.B) {
	for ord := 1; ord <= 4; ord++ {
		b.Run(fmt.Sprintf("order=%d", ord), func(b *testing.B) {
			w := getWorkload(b, workloadKey{n: 5000, nomDims: 2, card: 20, ord: ord})
			benchQueries(b, w, true)
		})
	}
}

// BenchmarkFigure8 — query time vs order on the real Nursery data set (0..3).
func BenchmarkFigure8(b *testing.B) {
	for ord := 0; ord <= 3; ord++ {
		b.Run(fmt.Sprintf("order=%d", ord), func(b *testing.B) {
			w := getWorkload(b, workloadKey{real: true, ord: ord})
			benchQueries(b, w, true)
		})
	}
}

// BenchmarkPreprocess — the figures' panel (a): engine construction cost at
// the default point (N scaled down further; tree construction dominates).
func BenchmarkPreprocess(b *testing.B) {
	key := workloadKey{n: 2000, nomDims: 2, card: 20, ord: 3}
	w := getWorkload(b, key)
	b.Run("IPO_Tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.NewIPOTree(w.ds, w.tmpl, ipotree.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("IPO_Tree-10", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.NewIPOTree(w.ds, w.tmpl, ipotree.Options{TopK: 10}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("SFS-A", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := adaptive.New(w.ds, w.tmpl); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationTreeQueryVariants compares the three implementations of
// the Theorem 2 algebra: skyline-set threading (Algorithm 1), accumulated
// disqualified sets, and bitmaps (§3.2 implementation notes).
func BenchmarkAblationTreeQueryVariants(b *testing.B) {
	w := getWorkload(b, workloadKey{n: 5000, nomDims: 2, card: 20, ord: 3})
	plain, err := ipotree.Build(w.ds, w.tmpl, ipotree.Options{})
	if err != nil {
		b.Fatal(err)
	}
	bitmap, err := ipotree.Build(w.ds, w.tmpl, ipotree.Options{UseBitmap: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("sets", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := plain.Query(w.queries[i%len(w.queries)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("accumulated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := plain.QueryAccumulated(w.queries[i%len(w.queries)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bitmap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bitmap.Query(w.queries[i%len(w.queries)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationAdaptiveVariants compares the merge-scan Adaptive SFS
// query with the paper-faithful skip-list delete/re-insert (§4.2).
func BenchmarkAblationAdaptiveVariants(b *testing.B) {
	w := getWorkload(b, workloadKey{n: 10000, nomDims: 2, card: 20, ord: 3})
	e := w.adaptiveSFS(b)
	b.Run("merge-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.Query(w.queries[i%len(w.queries)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("skiplist-resort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.QueryResort(w.queries[i%len(w.queries)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationBaselines compares the classic full-dataset algorithms
// under a fixed order-3 preference.
func BenchmarkAblationBaselines(b *testing.B) {
	w := getWorkload(b, workloadKey{n: 2500, nomDims: 2, card: 20, ord: 3})
	cmp, err := dominance.NewComparator(w.ds.Schema(), w.queries[0])
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			skyline.Naive(w.ds.Points(), cmp)
		}
	})
	b.Run("BNL", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			skyline.BNL(w.ds.Points(), cmp)
		}
	})
	b.Run("SFS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			skyline.SFS(w.ds.Points(), cmp)
		}
	})
	b.Run("DC", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			skyline.DC(w.ds.Points(), cmp)
		}
	})
}

// BenchmarkAblationFullMaterialization quantifies the strawman §3 rejects:
// materializing every preference's skyline vs. the IPO-tree, at a cardinality
// where full materialization is still feasible at all. Storage is attached as
// a custom metric; compare the two storage-B columns.
func BenchmarkAblationFullMaterialization(b *testing.B) {
	ds, err := gen.Dataset(gen.Config{
		N: 1000, NumDims: 2, NomDims: 2, Cardinality: 4,
		Theta: 1, Kind: gen.AntiCorrelated, Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	tmpl := ds.Schema().EmptyPreference()
	b.Run("materialize-all", func(b *testing.B) {
		var e *materialized.Engine
		for i := 0; i < b.N; i++ {
			if e, err = materialized.Build(ds, tmpl); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(e.SizeBytes()), "storage-B")
		b.ReportMetric(float64(e.Materialized()), "skylines")
	})
	b.Run("ipo-tree", func(b *testing.B) {
		var tr *ipotree.Tree
		for i := 0; i < b.N; i++ {
			if tr, err = ipotree.Build(ds, tmpl, ipotree.Options{}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(tr.SizeBytes()), "storage-B")
		b.ReportMetric(float64(tr.Stats().Nodes), "nodes")
	})
}

// BenchmarkAblationMaintenance measures §4.3 incremental updates.
func BenchmarkAblationMaintenance(b *testing.B) {
	w := getWorkload(b, workloadKey{n: 5000, nomDims: 2, card: 20, ord: 3})
	e, err := adaptive.New(w.ds, w.tmpl)
	if err != nil {
		b.Fatal(err)
	}
	num := []float64{0.4, 0.5, 0.6}
	nom := []order.Value{1, 2}
	b.Run("insert+delete", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			id, err := e.Insert(num, nom)
			if err != nil {
				b.Fatal(err)
			}
			if err := e.Delete(id); err != nil {
				b.Fatal(err)
			}
		}
	})
}
