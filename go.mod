module prefsky

go 1.24
