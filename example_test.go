package prefsky_test

import (
	"context"
	"fmt"

	"prefsky"
)

// Example reproduces the paper's running example: Alice prefers Tulips, then
// Mozilla, then anything; her skyline over Table 1 is {a, c}.
func Example() {
	ds := prefsky.Table1()
	engine, err := prefsky.NewIPOTree(ds, ds.Schema().EmptyPreference(), prefsky.TreeOptions{})
	if err != nil {
		panic(err)
	}
	pref, err := prefsky.ParsePreference(ds.Schema(), "Hotel-group: T<M<*")
	if err != nil {
		panic(err)
	}
	ids, err := engine.Skyline(context.Background(), pref)
	if err != nil {
		panic(err)
	}
	for _, id := range ids {
		fmt.Printf("package %c\n", 'a'+id)
	}
	// Output:
	// package a
	// package c
}

// ExampleParsePreference shows the textual preference syntax: per-attribute
// ordered favorites with a trailing * for "everything else".
func ExampleParsePreference() {
	ds := prefsky.Table3()
	pref, err := prefsky.ParsePreference(ds.Schema(), "Hotel-group: M<H<*; Airline: G<R<*")
	if err != nil {
		panic(err)
	}
	fmt.Println(prefsky.FormatPreference(ds.Schema(), pref))
	fmt.Println("order:", pref.Order())
	// Output:
	// Hotel-group: M<H<*; Airline: G<R<*
	// order: 2
}

// ExampleNewMaintainable demonstrates progressive iteration: Adaptive SFS
// yields each skyline point as soon as it is confirmed (§4.3).
func ExampleNewMaintainable() {
	ds := prefsky.Table1()
	engine, err := prefsky.NewMaintainable(ds, ds.Schema().EmptyPreference())
	if err != nil {
		panic(err)
	}
	pref, err := prefsky.ParsePreference(ds.Schema(), "Hotel-group: H<M<*")
	if err != nil {
		panic(err)
	}
	it, err := engine.QueryIter(pref)
	if err != nil {
		panic(err)
	}
	for {
		p, ok := it.Next()
		if !ok {
			break
		}
		fmt.Printf("package %c (price %.0f)\n", 'a'+p.ID, p.Num[0])
	}
	// Output:
	// package a (price 1600)
	// package e (price 2400)
	// package c (price 3000)
}

// ExampleNewHybrid shows the §5.3 engine: a top-K tree answers popular
// values, everything else falls back to Adaptive SFS — same results.
func ExampleNewHybrid() {
	ds := prefsky.Table3()
	engine, err := prefsky.NewHybrid(ds, ds.Schema().EmptyPreference(), prefsky.TreeOptions{TopK: 2})
	if err != nil {
		panic(err)
	}
	pref, err := prefsky.ParsePreference(ds.Schema(), "Airline: W<*")
	if err != nil {
		panic(err)
	}
	ids, err := engine.Skyline(context.Background(), pref)
	if err != nil {
		panic(err)
	}
	fmt.Println("skyline size:", len(ids))
	// Output:
	// skyline size: 5
}

// ExampleNewTreeAdvisor drives workload-aware materialization (§3.1): after
// observing queries, the advisor recommends which values deserve tree nodes.
func ExampleNewTreeAdvisor() {
	ds := prefsky.Table3()
	adv := prefsky.NewTreeAdvisor(ds.Schema().Cardinalities())
	for _, spec := range []string{
		"Hotel-group: T<*", "Hotel-group: T<M<*", "Hotel-group: T<*; Airline: G<*",
	} {
		pref, err := prefsky.ParsePreference(ds.Schema(), spec)
		if err != nil {
			panic(err)
		}
		adv.Observe(pref)
	}
	rec := adv.Recommend(0.5)
	fmt.Println("materialize Hotel-group values:", rec[0])
	engine, err := prefsky.NewIPOTree(ds, ds.Schema().EmptyPreference(),
		prefsky.TreeOptions{Values: rec})
	if err != nil {
		panic(err)
	}
	fmt.Println("engine:", engine.Name())
	// Output:
	// materialize Hotel-group values: [0]
	// engine: IPO Tree
}
