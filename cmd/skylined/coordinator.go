package main

import (
	"fmt"
	"net/http"
	"sync/atomic"

	"prefsky/internal/cluster"
	"prefsky/internal/data"
	"prefsky/internal/order"
)

// coordServer is the coordinator-mode HTTP front end: the same v1 read API
// as a single skylined node, answered by scatter-gather over the shard
// fleet. Mutations are not offered — cluster datasets change only through
// coordinator re-pushes, which version every cached result.
type coordServer struct {
	co    *cluster.Coordinator
	mux   *http.ServeMux
	ready atomic.Bool
}

func newCoordServer(co *cluster.Coordinator) *coordServer {
	s := &coordServer{co: co}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /v1/datasets", s.handleDatasets)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux = mux
	return s
}

func (s *coordServer) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *coordServer) markReady() { s.ready.Store(true) }

func (s *coordServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz mirrors the degraded-dataset convention: unreachable shards
// are listed but keep the coordinator ready — lenient queries still answer,
// and strict ones fail with a typed, retryable error.
func (s *coordServer) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "loading"})
		return
	}
	body := map[string]any{"status": "ready"}
	if down := s.co.Unreachable(); len(down) > 0 {
		body["unreachable"] = down
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *coordServer) handleDatasets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"datasets": s.co.Datasets()})
}

func (s *coordServer) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSONIndent(w, http.StatusOK, s.co.Stats())
}

// coordQueryRequest adds the per-request partial-failure policy to the
// single-node query shape: "fail" (default) or "superset".
type coordQueryRequest struct {
	Dataset       string `json:"dataset"`
	Preference    string `json:"preference"`
	IncludePoints bool   `json:"includePoints,omitempty"`
	OnUnavailable string `json:"on_unavailable,omitempty"`
}

// coordQueryResponse extends the single-node response with the
// partial-result flag and the shards that did not contribute.
type coordQueryResponse struct {
	queryResponse
	Partial     bool     `json:"partial,omitempty"`
	Unavailable []string `json:"unavailable,omitempty"`
}

func (s *coordServer) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req coordQueryRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	policy, err := cluster.ParseFailPolicy(req.OnUnavailable)
	if err != nil {
		writeError(w, err)
		return
	}
	schema, err := s.co.Schema(req.Dataset)
	if err != nil {
		writeError(w, err)
		return
	}
	pref, err := data.ParsePreference(schema, req.Preference)
	if err != nil {
		writeError(w, fmt.Errorf("parsing preference %q: %w", req.Preference, err))
		return
	}
	res, err := s.co.Query(r.Context(), req.Dataset, pref, policy)
	if err != nil {
		writeError(w, err)
		return
	}
	resp := coordQueryResponse{
		queryResponse: queryResponse{
			Dataset:    req.Dataset,
			Preference: data.FormatPreference(schema, pref),
			Canonical:  data.FormatPreference(schema, pref.Canonical()),
			IDs:        res.IDs,
			Count:      len(res.IDs),
			Cached:     res.Outcome.CacheHit(),
			Semantic:   res.Outcome.Semantic(),
		},
		Partial:     res.Partial,
		Unavailable: res.Unavailable,
	}
	if req.IncludePoints {
		resp.Points = make([]pointJSON, 0, len(res.IDs))
		for _, id := range res.IDs {
			p, err := s.co.Point(req.Dataset, id)
			if err != nil {
				continue
			}
			resp.Points = append(resp.Points, renderPoint(schema, id, p))
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

type coordBatchRequest struct {
	Dataset       string   `json:"dataset"`
	Preferences   []string `json:"preferences"`
	OnUnavailable string   `json:"on_unavailable,omitempty"`
}

type coordBatchMember struct {
	batchMember
	Partial     bool     `json:"partial,omitempty"`
	Unavailable []string `json:"unavailable,omitempty"`
}

type coordBatchResponse struct {
	Dataset string             `json:"dataset"`
	Results []coordBatchMember `json:"results"`
}

func (s *coordServer) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req coordBatchRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if len(req.Preferences) > maxBatchPreferences {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: fmt.Sprintf("batch of %d preferences exceeds the limit of %d",
				len(req.Preferences), maxBatchPreferences),
			Code: codeTooLarge,
		})
		return
	}
	policy, err := cluster.ParseFailPolicy(req.OnUnavailable)
	if err != nil {
		writeError(w, err)
		return
	}
	schema, err := s.co.Schema(req.Dataset)
	if err != nil {
		writeError(w, err)
		return
	}
	prefs := make([]*order.Preference, len(req.Preferences))
	members := make([]coordBatchMember, len(req.Preferences))
	for i, spec := range req.Preferences {
		members[i].Preference = spec
		p, err := data.ParsePreference(schema, spec)
		if err != nil {
			members[i].Error = err.Error()
			members[i].Code = codeBadRequest
			continue
		}
		prefs[i] = p
		members[i].Preference = data.FormatPreference(schema, p)
	}
	runnable := make([]*order.Preference, 0, len(prefs))
	runIdx := make([]int, 0, len(prefs))
	for i, p := range prefs {
		if p != nil {
			runnable = append(runnable, p)
			runIdx = append(runIdx, i)
		}
	}
	for j, res := range s.co.Batch(r.Context(), req.Dataset, runnable, policy) {
		m := &members[runIdx[j]]
		if res.Err != nil {
			m.Error = res.Err.Error()
			_, m.Code = classify(res.Err)
			continue
		}
		m.IDs = res.IDs
		m.Count = len(res.IDs)
		m.Cached = res.Outcome.CacheHit()
		m.Semantic = res.Outcome.Semantic()
		m.Partial = res.Partial
		m.Unavailable = res.Unavailable
	}
	writeJSON(w, http.StatusOK, coordBatchResponse{Dataset: req.Dataset, Results: members})
}
