package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"prefsky/internal/durable"
	"prefsky/internal/service"
)

// TestSIGTERMFlushesDurableWrites drives the real serve loop — listener,
// signal handling, graceful drain, durable close — end to end: a burst of
// concurrent durable inserts is in flight when the process receives SIGTERM.
// Every insert acknowledged with a 200 must survive into a restarted
// service, and the restart must recover exactly the version the store
// reached before shutdown — no acknowledged write lost, no partial write
// replayed.
func TestSIGTERMFlushesDurableWrites(t *testing.T) {
	dir := t.TempDir()
	ds, err := demoFlights()
	if err != nil {
		t.Fatal(err)
	}
	// FsyncAlways makes the acknowledgment contract exact: a 200 means the
	// WAL record was synced before the response was written.
	cfg := service.EngineConfig{
		Kind:    "sfsa",
		Durable: &durable.Config{Dir: dir, Fsync: durable.FsyncAlways},
	}

	svc := service.New(service.Options{})
	srv := newServer(svc)
	boot := func() error {
		if err := svc.AddDataset("flights", ds, cfg); err != nil {
			return err
		}
		srv.markReady()
		return nil
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- serveWith(ln, srv, boot, svc.Close) }()
	base := "http://" + ln.Addr().String()

	// One connection per request: a hammered keep-alive connection never goes
	// idle, and would hold http.Server.Shutdown open for its full timeout.
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	waitForReady(t, client, base)

	// The write burst: workers insert until the server stops answering.
	// acked counts only inserts whose 200 response was fully read — exactly
	// the writes the durability contract covers.
	var acked atomic.Int64
	body, err := json.Marshal(insertRequest{Dataset: "flights", Points: []pointInput{{
		Numeric: map[string]float64{"Fare": 1, "Hours": 1, "Stops": 0},
		Nominal: map[string]string{"Airline": "Gonna", "Transit": "AMS"},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				resp, err := client.Post(base+"/v1/insert", "application/json", bytes.NewReader(body))
				if err != nil {
					return // server gone: the burst is over
				}
				_, rerr := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || rerr != nil {
					return
				}
				acked.Add(1)
			}
		}()
	}

	// Let some writes land, then deliver a real SIGTERM mid-burst.
	deadline := time.Now().Add(5 * time.Second)
	for acked.Load() < 20 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if acked.Load() == 0 {
		t.Fatal("no insert acknowledged before SIGTERM")
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("serveWith after SIGTERM = %v, want nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serveWith did not return within 30s of SIGTERM")
	}
	wg.Wait()

	// The closed service still reads: capture the exact state the store
	// reached (acknowledged or not) as the replay target.
	infos := svc.Datasets()
	if len(infos) != 1 {
		t.Fatalf("datasets after shutdown = %d, want 1", len(infos))
	}
	wantPoints, wantVersion := infos[0].Points, infos[0].Version

	svc2 := service.New(service.Options{})
	defer svc2.Close()
	if err := svc2.AddDataset("flights", ds, cfg); err != nil {
		t.Fatalf("restart: %v", err)
	}
	got := svc2.Datasets()[0]
	if got.Points != wantPoints || got.Version != wantVersion {
		t.Fatalf("restart recovered %d points at version %d, want %d at %d",
			got.Points, got.Version, wantPoints, wantVersion)
	}
	// Every acknowledged insert is in the recovered set (the seed is 3000
	// demo flights; un-acknowledged in-flight inserts may add more).
	if min := 3000 + int(acked.Load()); got.Points < min {
		t.Fatalf("restart recovered %d points, want at least %d (3000 seed + %d acked)",
			got.Points, min, acked.Load())
	}
	if got.Durability == nil || !got.Durability.Recovery.FromDisk {
		t.Fatalf("restart reported no disk recovery: %+v", got.Durability)
	}
}

// waitForReady polls /readyz until the serving loop finishes boot.
func waitForReady(t *testing.T, client *http.Client, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := client.Get(base + "/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal(fmt.Errorf("server not ready after 10s"))
}
