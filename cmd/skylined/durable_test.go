package main

import (
	"net/http/httptest"
	"reflect"
	"testing"

	"prefsky/internal/durable"
	"prefsky/internal/service"
)

// TestReadyzGatesOnBoot: /readyz must refuse traffic until the server is
// marked ready (boot recovery finished), while /healthz stays a pure
// liveness probe throughout.
func TestReadyzGatesOnBoot(t *testing.T) {
	svc := service.New(service.Options{})
	srv := newServer(svc)

	var ready, health map[string]string
	if code := doJSON(t, srv, "GET", "/readyz", nil, &ready); code != 503 {
		t.Fatalf("readyz before boot: %d, want 503", code)
	}
	if ready["status"] != "recovering" {
		t.Errorf("readyz body before boot = %v", ready)
	}
	if code := doJSON(t, srv, "GET", "/healthz", nil, &health); code != 200 {
		t.Fatalf("healthz must stay live during boot, got %d", code)
	}

	srv.markReady()
	if code := doJSON(t, srv, "GET", "/readyz", nil, &ready); code != 200 {
		t.Fatalf("readyz after boot: %d, want 200", code)
	}
	if ready["status"] != "ready" {
		t.Errorf("readyz body after boot = %v", ready)
	}
}

// TestDurableRestartKeepsMutations drives mutations through the HTTP
// handlers against a durable dataset, shuts the service down, boots a second
// server over the same directory, and expects the same skyline — the
// kill-9-and-restart story of the README quickstart, minus the process
// boundary.
func TestDurableRestartKeepsMutations(t *testing.T) {
	dir := t.TempDir()
	ds, err := demoFlights()
	if err != nil {
		t.Fatal(err)
	}
	cfg := service.EngineConfig{
		Kind:    "sfsa",
		Durable: &durable.Config{Dir: dir, Fsync: durable.FsyncOff},
	}

	svc := service.New(service.Options{})
	if err := svc.AddDataset("flights", ds, cfg); err != nil {
		t.Fatal(err)
	}
	h := newServer(svc)
	h.markReady()

	pt := pointInput{
		Numeric: map[string]float64{"Fare": 1, "Hours": 1, "Stops": 0},
		Nominal: map[string]string{"Airline": "Gonna", "Transit": "AMS"},
	}
	var ins insertResponse
	if code := doJSON(t, h, "POST", "/v1/insert",
		insertRequest{Dataset: "flights", Points: []pointInput{pt, pt}}, &ins); code != 200 {
		t.Fatalf("insert: %d", code)
	}
	var del deleteResponse
	if code := doJSON(t, h, "POST", "/v1/delete",
		deleteRequest{Dataset: "flights", IDs: ins.IDs[:1]}, &del); code != 200 {
		t.Fatalf("delete: %d", code)
	}
	const spec = "Airline: Gonna<*; Transit: AMS<*"
	var before queryResponse
	if code := doJSON(t, h, "POST", "/v1/query",
		queryRequest{Dataset: "flights", Preference: spec}, &before); code != 200 {
		t.Fatalf("query: %d", code)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	// The closed journal refuses further mutations instead of losing them.
	rec := httptest.NewRecorder()
	if code := doJSON(t, h, "POST", "/v1/insert",
		insertRequest{Dataset: "flights", Points: []pointInput{pt}}, nil); code == 200 {
		t.Fatalf("insert after shutdown succeeded (rec %v)", rec.Code)
	}

	svc2 := service.New(service.Options{})
	defer svc2.Close()
	if err := svc2.AddDataset("flights", ds, cfg); err != nil {
		t.Fatal(err)
	}
	h2 := newServer(svc2)
	h2.markReady()
	var after queryResponse
	if code := doJSON(t, h2, "POST", "/v1/query",
		queryRequest{Dataset: "flights", Preference: spec}, &after); code != 200 {
		t.Fatalf("query after restart: %d", code)
	}
	if !reflect.DeepEqual(after.IDs, before.IDs) {
		t.Fatalf("skyline after restart %v, want %v", after.IDs, before.IDs)
	}

	// /v1/stats surfaces the recovery on the restarted node.
	var st service.Stats
	if code := doJSON(t, h2, "GET", "/v1/stats", nil, &st); code != 200 {
		t.Fatalf("stats: %d", code)
	}
	if len(st.Datasets) != 1 || st.Datasets[0].Durability == nil {
		t.Fatalf("stats missing durability: %+v", st.Datasets)
	}
	d := st.Datasets[0].Durability
	if !d.Recovery.FromDisk || d.Recovery.Version == 0 {
		t.Fatalf("recovery stats %+v", d.Recovery)
	}
}

// TestDurableConfigWiring: -data-dir gives every dataset its own state
// subdirectory; without it datasets stay memory-only.
func TestDurableConfigWiring(t *testing.T) {
	if cfg := durableConfig("", "flights", durable.FsyncGroup, 0, 0); cfg != nil {
		t.Fatal("durability configured without -data-dir")
	}
	dir := t.TempDir()
	cfg := durableConfig(dir, "flights", durable.FsyncAlways, 0, 0)
	if cfg == nil || cfg.Dir == dir || cfg.Fsync != durable.FsyncAlways {
		t.Fatalf("durable config %+v: want per-dataset subdirectory and the requested policy", cfg)
	}
	other := durableConfig(dir, "hotels", durable.FsyncAlways, 0, 0)
	if other.Dir == cfg.Dir {
		t.Fatal("datasets share a state directory")
	}
}
