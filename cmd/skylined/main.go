// Command skylined serves implicit-preference skyline queries over HTTP: the
// concurrent front end to the paper's engines, built on internal/service
// (engine registry + canonical-preference result cache + bounded worker
// pool).
//
// Usage:
//
//	skylined -addr :8080 -demo
//	skylined -addr :8080 -dataset hotels=schema.json,data.csv -engine hybrid -topk 10
//	skylined -addr :8080 -demo -engine parallel-sfs -partitions 8 -query-timeout 250ms
//	skylined -addr :8080 -demo -kernel flat -pprof 127.0.0.1:6060
//
// Endpoints:
//
//	GET  /healthz      liveness
//	GET  /v1/datasets  hosted datasets and per-dataset counters
//	GET  /v1/stats     cache + executor + snapshot/compaction counters
//	POST /v1/query     {"dataset":"flights","preference":"Airline: Gonna<*"}
//	POST /v1/batch     {"dataset":"flights","preferences":["...", "..."]}
//	POST /v1/insert    {"dataset":"flights","points":[{"numeric":{...},"nominal":{...}}]}
//	POST /v1/delete    {"dataset":"flights","ids":[17,42]}
//
// Preferences use the library's string syntax ("Attr: a<b<*; Other: c<*").
// Canonically equal preferences — e.g. a total order and its forced-last
// prefix — share result-cache entries, so skewed traffic is served hot. An
// exact cache miss additionally probes the preference's refinement lattice:
// if a strictly coarser preference's skyline is cached at the same store
// version, Theorem 1 bounds the refined skyline by those candidates and the
// flat kernel scans only them (response field "semantic": true;
// -semantic-limit tunes the largest ancestor worth scanning). /v1/stats
// reports hits, semanticHits and misses.
//
// Every engine kind accepts maintenance: datasets live in a versioned
// columnar store, queries read atomically-swapped snapshots without ever
// blocking behind writers, and -compact-threshold tunes when the store
// rebuilds its base layout in the background. -readonly freezes all hosted
// datasets (mutations answer 409).
//
// Every request is context-bound: -query-timeout deadline-bounds uncached
// queries (HTTP 504 past it), and a disconnected client releases its worker
// slot and aborts in-flight partitioned scans. The server itself runs with
// read/write/idle timeouts and shuts down gracefully on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"prefsky"
	"prefsky/internal/cluster"
	"prefsky/internal/data"
	"prefsky/internal/durable"
	"prefsky/internal/flat"
	"prefsky/internal/gen"
	"prefsky/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "skylined:", err)
		os.Exit(1)
	}
}

// datasetFlags collects repeated -dataset name=schema.json,data.csv values.
type datasetFlags []string

func (d *datasetFlags) String() string     { return strings.Join(*d, " ") }
func (d *datasetFlags) Set(v string) error { *d = append(*d, v); return nil }

func run(args []string) error {
	fs := flag.NewFlagSet("skylined", flag.ContinueOnError)
	var datasets datasetFlags
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		engine     = fs.String("engine", "sfsa", "engine per dataset: ipo, sfsa, sfsd, hybrid, parallel-sfs or parallel-hybrid")
		topK       = fs.Int("topk", 0, "materialize only the K most frequent values (ipo/hybrid)")
		partitions = fs.Int("partitions", 0, "blocks per parallel-sfs/parallel-hybrid query (0 = GOMAXPROCS)")
		tmplSpec   = fs.String("template", "", "template preference shared by all users")
		cacheCap   = fs.Int("cache", 4096, "result cache capacity in entries (negative disables)")
		shards     = fs.Int("cache-shards", 16, "result cache shard count")
		workers    = fs.Int("workers", 0, "max concurrent engine queries (0 = GOMAXPROCS)")
		queryTO    = fs.Duration("query-timeout", 0, "per-query deadline for uncached queries (0 = none)")
		semLimit   = fs.Int("semantic-limit", 0, "max cached coarser-skyline size the semantic cache path will scan (0 = default 4096, negative disables)")
		demo       = fs.Bool("demo", false, "host the built-in flights demo dataset")
		kernel     = fs.String("kernel", "flat", "scan kernel for sfsd/parallel engines: flat (columnar) or pointer")
		gridSpec   = fs.String("grid", "auto", "grid pruning for flat-kernel scans: auto (large scans only), on or off")
		batchVec   = fs.Bool("batch-vectorized", true, "answer /v1/batch misses in one shared scan instead of per-preference queries")
		pprofAddr  = fs.String("pprof", "", "serve net/http/pprof on this loopback address (e.g. 127.0.0.1:6060; empty disables)")
		compactAt  = fs.Int("compact-threshold", 0, "delta+tombstone rows that trigger background compaction (0 = default, negative disables)")
		readOnly   = fs.Bool("readonly", false, "freeze all datasets: /v1/insert and /v1/delete answer 409")
		dataDir    = fs.String("data-dir", "", "persist datasets under this directory (WAL + checkpoints, recovered on restart; empty = memory only)")
		fsyncSpec  = fs.String("fsync", "interval", "WAL sync policy with -data-dir: always (sync per mutation), interval (group commit) or off")
		fsyncEvery = fs.Duration("fsync-interval", 0, "group-commit sync period with -fsync interval (0 = 50ms default)")
		maxQueued  = fs.Int("max-queued", 0, "max engine queries waiting for a worker before new ones are shed with 503 (0 = 8x workers, negative = unbounded)")
		rearmWait  = fs.Duration("rearm-backoff", 0, "initial backoff between degraded-mode disk re-arm probes (0 = 250ms default, doubling to 30s)")
		shardMode  = fs.Bool("shard-mode", false, "serve as a cluster shard: mount /v1/shard/* for coordinator partition pushes (datasets optional at boot)")
		coordMode  = fs.Bool("coordinator", false, "serve as a cluster coordinator scatter-gathering over the -shard fleet")
		partSpec   = fs.String("partitioner", "hash", "coordinator dataset partitioner: hash or grid")
		shardTO    = fs.Duration("shard-timeout", 0, "coordinator per-shard request timeout (0 = 5s default)")
		hedgeWait  = fs.Duration("hedge", 0, "coordinator delay before hedging a slow shard request to its replica (0 disables hedging)")
		shardInfl  = fs.Int("shard-inflight", 0, "coordinator max in-flight requests per shard (0 = 64 default)")
		probeEvery = fs.Duration("probe-interval", 0, "coordinator shard health/re-push probe period (0 = 2s default, negative disables)")
	)
	var shardURLs datasetFlags
	fs.Var(&datasets, "dataset", "name=schema.json,data.csv (repeatable)")
	fs.Var(&shardURLs, "shard", "shard base URL as url or url|replica-url (repeatable, coordinator mode)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coordMode && *shardMode {
		return fmt.Errorf("-coordinator and -shard-mode are mutually exclusive")
	}
	if !*coordMode && len(shardURLs) > 0 {
		return fmt.Errorf("-shard requires -coordinator")
	}
	if *coordMode {
		if len(shardURLs) == 0 {
			return fmt.Errorf("-coordinator requires at least one -shard url")
		}
		if len(datasets) == 0 && !*demo {
			return fmt.Errorf("no datasets: pass -dataset name=schema.json,data.csv or -demo")
		}
		return runCoordinator(coordinatorConfig{
			addr: *addr, shards: shardURLs, partitioner: *partSpec,
			datasets: datasets, demo: *demo,
			cacheCap: *cacheCap, cacheShards: *shards, semLimit: *semLimit,
			shardTimeout: *shardTO, hedge: *hedgeWait, inflight: *shardInfl,
			probeInterval: *probeEvery, pprofAddr: *pprofAddr,
		})
	}
	if len(datasets) == 0 && !*demo && !*shardMode {
		return fmt.Errorf("no datasets: pass -dataset name=schema.json,data.csv or -demo")
	}
	if _, err := flat.ParseKernel(*kernel); err != nil {
		return err
	}
	if _, err := flat.ParseGridMode(*gridSpec); err != nil {
		return err
	}
	fsyncPolicy, err := durable.ParsePolicy(*fsyncSpec)
	if err != nil {
		return err
	}
	if *pprofAddr != "" {
		if err := servePprof(*pprofAddr); err != nil {
			return err
		}
	}

	svc := service.New(service.Options{
		CacheCapacity:          *cacheCap,
		CacheShards:            *shards,
		Workers:                *workers,
		QueryTimeout:           *queryTO,
		SemanticCandidateLimit: *semLimit,
		DisableVectorizedBatch: !*batchVec,
		MaxQueuedQueries:       *maxQueued,
	})
	cfgFor := func(name string, schema *data.Schema) (service.EngineConfig, error) {
		tmpl, err := data.ParsePreference(schema, *tmplSpec)
		if err != nil {
			return service.EngineConfig{}, fmt.Errorf("parsing template: %w", err)
		}
		cfg := service.EngineConfig{
			Kind:             *engine,
			Template:         tmpl,
			Tree:             prefsky.TreeOptions{TopK: *topK},
			Partitions:       *partitions,
			Kernel:           *kernel,
			Grid:             *gridSpec,
			CompactThreshold: *compactAt,
			ReadOnly:         *readOnly,
		}
		cfg.Durable = durableConfig(*dataDir, name, fsyncPolicy, *fsyncEvery, *rearmWait)
		return cfg, nil
	}

	// Dataset registration — durable recovery and WAL replay included — runs
	// as the boot step after the listener is already up: /healthz answers
	// (liveness) while /readyz stays 503 until registration completes.
	srv := newServer(svc)
	var handler http.Handler = srv
	if *shardMode {
		// Coordinator-pushed partitions run the same engine configuration as
		// locally hosted datasets, minus durability and template preferences
		// (partitions are read-only snapshots versioned by the coordinator).
		shardCfg := service.EngineConfig{
			Kind:             *engine,
			Tree:             prefsky.TreeOptions{TopK: *topK},
			Partitions:       *partitions,
			Kernel:           *kernel,
			Grid:             *gridSpec,
			CompactThreshold: *compactAt,
		}
		outer := http.NewServeMux()
		outer.Handle("/v1/shard/", cluster.NewShardHandler(svc, shardCfg))
		outer.Handle("/", srv)
		handler = outer
	}
	boot := func() error {
		if *demo {
			ds, err := demoFlights()
			if err != nil {
				return err
			}
			cfg, err := cfgFor("flights", ds.Schema())
			if err != nil {
				return err
			}
			if err := svc.AddDataset("flights", ds, cfg); err != nil {
				return err
			}
		}
		for _, spec := range datasets {
			name, ds, err := loadDataset(spec)
			if err != nil {
				return err
			}
			cfg, err := cfgFor(name, ds.Schema())
			if err != nil {
				return fmt.Errorf("dataset %s: %w", name, err)
			}
			if err := svc.AddDataset(name, ds, cfg); err != nil {
				return err
			}
		}
		for _, info := range svc.Datasets() {
			log.Printf("dataset %q: %d points, engine %s (%d bytes)",
				info.Name, info.Points, info.Engine, info.EngineBytes)
			if info.Durability != nil && info.Durability.Recovery.FromDisk {
				rec := info.Durability.Recovery
				log.Printf("dataset %q: recovered version %d (checkpoint %d + %d records, %d rows, %d torn bytes truncated) in %.1fms",
					info.Name, rec.Version, rec.CheckpointVersion, rec.RecordsReplayed, rec.RowsReplayed, rec.TruncatedBytes, rec.DurationMS)
			}
		}
		srv.markReady()
		return nil
	}
	return serve(*addr, handler, boot, svc.Close)
}

// coordinatorConfig gathers the -coordinator mode's flag values.
type coordinatorConfig struct {
	addr          string
	shards        []string
	partitioner   string
	datasets      []string
	demo          bool
	cacheCap      int
	cacheShards   int
	semLimit      int
	shardTimeout  time.Duration
	hedge         time.Duration
	inflight      int
	probeInterval time.Duration
	pprofAddr     string
}

// runCoordinator boots the scatter-gather tier: build the shard clients,
// partition and push every dataset, start the health/re-push loop, serve.
func runCoordinator(cfg coordinatorConfig) error {
	part, err := cluster.ParsePartitioner(cfg.partitioner)
	if err != nil {
		return err
	}
	specs := make([]cluster.ShardSpec, len(cfg.shards))
	for i, s := range cfg.shards {
		urls := strings.Split(s, "|")
		specs[i] = cluster.ShardSpec{URLs: urls}
	}
	co, err := cluster.New(specs, cluster.Options{
		Partitioner: part,
		Client: cluster.ClientOptions{
			Timeout:     cfg.shardTimeout,
			HedgeDelay:  cfg.hedge,
			MaxInflight: cfg.inflight,
		},
		CacheCapacity:          cfg.cacheCap,
		CacheShards:            cfg.cacheShards,
		SemanticCandidateLimit: cfg.semLimit,
		ProbeInterval:          cfg.probeInterval,
	})
	if err != nil {
		return err
	}
	if cfg.pprofAddr != "" {
		if err := servePprof(cfg.pprofAddr); err != nil {
			return err
		}
	}
	srv := newCoordServer(co)
	boot := func() error {
		push := func(name string, ds *data.Dataset) error {
			//lint:background listener-first boot: the initial push outlives no request and must not die with one
			if err := co.AddDataset(context.Background(), name, ds); err != nil {
				// Non-fatal: the dataset is registered and the probe loop
				// re-pushes the failed shard as soon as it answers.
				log.Printf("dataset %q: initial push incomplete: %v", name, err)
			} else {
				log.Printf("dataset %q: %d points across %d shards (%s partitioning)",
					name, ds.N(), co.Shards(), part.Name())
			}
			return nil
		}
		if cfg.demo {
			ds, err := demoFlights()
			if err != nil {
				return err
			}
			if err := push("flights", ds); err != nil {
				return err
			}
		}
		for _, spec := range cfg.datasets {
			name, ds, err := loadDataset(spec)
			if err != nil {
				return err
			}
			if err := push(name, ds); err != nil {
				return err
			}
		}
		co.Start()
		srv.markReady()
		return nil
	}
	return serve(cfg.addr, srv, boot, func() error { co.Close(); return nil })
}

// durableConfig builds one dataset's durability configuration — its own
// subdirectory under dataDir, so datasets never interleave WAL segments —
// or nil when -data-dir is unset (memory only).
func durableConfig(dataDir, name string, policy durable.Policy, interval, rearmBackoff time.Duration) *durable.Config {
	if dataDir == "" {
		return nil
	}
	return &durable.Config{
		Dir:           filepath.Join(dataDir, name),
		Fsync:         policy,
		GroupInterval: interval,
		RearmBackoff:  rearmBackoff,
	}
}

// serve runs a hardened http.Server until the listener fails or the process
// receives SIGINT/SIGTERM, then drains in-flight requests gracefully. The
// explicit read/write timeouts bound slow or stalled clients (slowloris)
// that the bare http.ListenAndServe defaults would let hold connections
// forever.
//
// boot runs concurrently with serving, after the listener is up: the boot
// step (dataset registration, durable recovery) can take a while and the
// health endpoints must answer during it. closeFn runs after requests have
// drained AND boot has finished (never concurrently with it), flushing
// durable state so a SIGTERM loses nothing acknowledged.
func serve(addr string, handler http.Handler, boot func() error, closeFn func() error) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return serveWith(ln, handler, boot, closeFn)
}

// serveWith is serve over an already-bound listener, so tests can own the
// port and drive the full SIGTERM graceful-shutdown path in-process.
func serveWith(ln net.Listener, handler http.Handler, boot func() error, closeFn func() error) error {
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	//lint:background process lifecycle root: the serve loop's ctx is bound to SIGINT/SIGTERM, not to any caller
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Printf("skylined listening on %s", ln.Addr())
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	bootCh := make(chan error, 1)
	go func() { bootCh <- boot() }()

	// finish drains a still-running boot (so closeFn never races recovery)
	// and flushes durable state.
	finish := func() error {
		if bootCh != nil {
			<-bootCh
			bootCh = nil
		}
		return closeFn()
	}

	for {
		select {
		case err := <-errCh:
			finish()
			return err
		case err := <-bootCh:
			bootCh = nil // receiving from a nil channel blocks: case disabled
			if err != nil {
				srv.Close()
				<-errCh
				closeFn()
				return err
			}
		case <-ctx.Done():
			stop() // restore default signal behavior: a second signal kills hard
			log.Printf("skylined shutting down")
			//lint:background the drain deadline must outlive the just-canceled serve ctx
			shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := srv.Shutdown(shutdownCtx); err != nil {
				finish()
				return fmt.Errorf("shutdown: %w", err)
			}
			if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
				finish()
				return err
			}
			if err := finish(); err != nil {
				return fmt.Errorf("flushing durable state: %w", err)
			}
			return nil
		}
	}
}

// servePprof mounts net/http/pprof on its own mux and its own listener so
// production profiles of the scan kernels can be captured without exposing
// debug endpoints on the public serving address. The address must be
// loopback-only; anything else is refused rather than silently bound.
func servePprof(addr string) error {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("-pprof %q: %w", addr, err)
	}
	if ip := net.ParseIP(host); host != "localhost" && (ip == nil || !ip.IsLoopback()) {
		return fmt.Errorf("-pprof %q: refusing non-loopback host %q (use 127.0.0.1 or localhost)", addr, host)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("-pprof %q: %w", addr, err)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		log.Printf("pprof listening on %s (loopback only)", ln.Addr())
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("pprof server: %v", err)
		}
	}()
	return nil
}

// loadDataset parses one -dataset spec and loads the CSV under the schema.
func loadDataset(spec string) (string, *data.Dataset, error) {
	name, paths, ok := strings.Cut(spec, "=")
	if !ok {
		return "", nil, fmt.Errorf("-dataset %q: want name=schema.json,data.csv", spec)
	}
	schemaPath, csvPath, ok := strings.Cut(paths, ",")
	if !ok {
		return "", nil, fmt.Errorf("-dataset %q: want name=schema.json,data.csv", spec)
	}
	schemaFile, err := os.Open(schemaPath)
	if err != nil {
		return "", nil, err
	}
	defer schemaFile.Close()
	schema, err := data.ReadSchemaJSON(schemaFile)
	if err != nil {
		return "", nil, fmt.Errorf("dataset %s: %w", name, err)
	}
	csvFile, err := os.Open(csvPath)
	if err != nil {
		return "", nil, err
	}
	defer csvFile.Close()
	ds, err := data.ReadCSV(csvFile, schema)
	if err != nil {
		return "", nil, fmt.Errorf("dataset %s: %w", name, err)
	}
	return name, ds, nil
}

// demoFlights builds the shared flight-booking demo dataset: 3000 synthetic
// flights over nominal Airline and Transit attributes (fixed seed, so every
// run serves the same data examples/flights indexes).
func demoFlights() (*data.Dataset, error) {
	return gen.Flights(3000, 7)
}
