package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net/http"
	"sync/atomic"

	"prefsky/internal/cluster"
	"prefsky/internal/data"
	"prefsky/internal/order"
	"prefsky/internal/service"
)

// Request hardening bounds: a request body larger than maxBodyBytes, a batch
// naming more than maxBatchPreferences preferences, or a mutation batch with
// more than maxBatchMutations members is rejected before any engine work
// happens.
const (
	maxBodyBytes        = 1 << 20 // 1 MiB
	maxBatchPreferences = 256
	maxBatchMutations   = 1024
)

// server is the HTTP front end over the service facade. ready distinguishes
// liveness from readiness: the process serves /healthz from the moment the
// listener is up, but /readyz answers 503 until boot-time dataset
// registration — durable recovery and WAL replay included — has finished, so
// a load balancer never routes traffic to a half-recovered node.
type server struct {
	svc   *service.Service
	mux   *http.ServeMux
	ready atomic.Bool
}

// newServer routes the v1 API.
func newServer(svc *service.Service) *server {
	s := &server{svc: svc}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /v1/datasets", s.handleDatasets)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/insert", s.handleInsert)
	mux.HandleFunc("POST /v1/delete", s.handleDelete)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// markReady flips /readyz to 200 once boot has finished.
func (s *server) markReady() { s.ready.Store(true) }

// errorResponse is the JSON error body every handler returns: a
// human-readable message plus a machine-readable code (see README for the
// full status-code contract).
type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// Machine-readable error codes carried in errorResponse.Code.
const (
	codeBadRequest     = "bad-request"
	codeUnknownDataset = "unknown-dataset"
	codeUnknownPoint   = "unknown-point"
	codeReadOnly       = "read-only"
	codeTooLarge       = "too-large"
	codeDegraded       = "degraded"
	codeOverloaded     = "overloaded"
	codeTimeout        = "timeout"
	codeCanceled       = "canceled"
	// Coordinator-mode codes: a shard (or enough of its replicas) did not
	// answer — retryable — vs. a shard answered wrongly (malformed partial,
	// protocol version skew) — an operator problem surfaced as 502.
	codeShardUnavailable = "shard_unavailable"
	codeShardProtocol    = "shard-protocol"
)

// writeJSON writes a compact JSON response — the hot query path skips
// indentation. Encode errors after the header is written cannot reach the
// client, so they are logged (typically the client went away mid-stream).
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("skylined: encoding response: %v", err)
	}
}

// writeJSONIndent is writeJSON with human-friendly indentation, reserved for
// the low-traffic introspection endpoints (/v1/stats).
func writeJSONIndent(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("skylined: encoding response: %v", err)
	}
}

// decodeJSON reads a bounded request body into v, rejecting unknown fields
// so a typo'd field name fails loudly instead of silently defaulting.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request: %w", err)
	}
	return nil
}

// classify maps an error to its HTTP status and machine-readable code — the
// single source of truth for the status-code contract documented in README.
func classify(err error) (status int, code string) {
	var maxBytesErr *http.MaxBytesError
	switch {
	case errors.Is(err, service.ErrUnknownDataset):
		return http.StatusNotFound, codeUnknownDataset
	case errors.Is(err, service.ErrUnknownPoint):
		// Deleting (or rendering) a point id that was never assigned or is
		// already gone.
		return http.StatusNotFound, codeUnknownPoint
	case errors.Is(err, service.ErrNotMaintainable):
		// The dataset is explicitly read-only or runs a legacy
		// pointer-kernel engine.
		return http.StatusConflict, codeReadOnly
	case errors.Is(err, service.ErrDegraded):
		// A disk fault moved the dataset to degraded read-only; the re-arm
		// loop is probing, so the write is retryable.
		return http.StatusServiceUnavailable, codeDegraded
	case errors.Is(err, service.ErrOverloaded):
		// The admission queue is full; the query was shed without blocking.
		return http.StatusServiceUnavailable, codeOverloaded
	case errors.Is(err, cluster.ErrShardUnavailable):
		// Strict-policy query against a down shard; Retry-After rides along —
		// the probe loop re-pushes as soon as the shard rejoins.
		return http.StatusServiceUnavailable, codeShardUnavailable
	case errors.Is(err, cluster.ErrShardProtocol):
		// Malformed shard response or coordinator/shard version skew.
		return http.StatusBadGateway, codeShardProtocol
	case errors.As(err, &maxBytesErr):
		return http.StatusRequestEntityTooLarge, codeTooLarge
	case errors.Is(err, context.DeadlineExceeded):
		// The -query-timeout deadline fired before the engine finished.
		return http.StatusGatewayTimeout, codeTimeout
	case errors.Is(err, context.Canceled):
		// The client disconnected; 499 (nginx convention) for the access log.
		return 499, codeCanceled
	default:
		// Preference parse/validation problems are client errors.
		return http.StatusBadRequest, codeBadRequest
	}
}

// retryAfter suggests the client backoff for retryable 503s: sheds clear as
// soon as a worker frees (retry immediately-ish), degraded datasets wait on
// the re-arm loop's backoff.
func retryAfter(code string) string {
	if code == codeDegraded {
		return "5"
	}
	return "1"
}

func writeError(w http.ResponseWriter, err error) {
	status, code := classify(err)
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", retryAfter(code))
	}
	writeJSON(w, status, errorResponse{Error: err.Error(), Code: code})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "recovering"})
		return
	}
	// Degraded datasets still serve reads, so the node stays ready; the list
	// tells operators (and smarter balancers) which datasets refuse writes.
	body := map[string]any{"status": "ready"}
	var degraded []string
	for _, info := range s.svc.Datasets() {
		if info.Health != "" && info.Health != "ok" {
			degraded = append(degraded, info.Name)
		}
	}
	if len(degraded) > 0 {
		body["degraded"] = degraded
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"datasets": s.svc.Datasets()})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSONIndent(w, http.StatusOK, s.svc.Stats())
}

type queryRequest struct {
	Dataset    string `json:"dataset"`
	Preference string `json:"preference"`
	// IncludePoints adds the matching points' attribute values to the
	// response alongside their ids.
	IncludePoints bool `json:"includePoints,omitempty"`
}

type pointJSON struct {
	ID      data.PointID       `json:"id"`
	Numeric map[string]float64 `json:"numeric"`
	Nominal map[string]string  `json:"nominal"`
}

type queryResponse struct {
	Dataset    string         `json:"dataset"`
	Preference string         `json:"preference"`
	Canonical  string         `json:"canonical"`
	IDs        []data.PointID `json:"ids"`
	Count      int            `json:"count"`
	Cached     bool           `json:"cached"`
	// Semantic marks results derived from a cached coarser preference's
	// skyline (the refinement-lattice path) rather than a full engine scan.
	Semantic bool        `json:"semantic,omitempty"`
	Points   []pointJSON `json:"points,omitempty"`
}

// parsePref resolves the dataset's schema and parses the preference string
// against it.
func (s *server) parsePref(dataset, spec string) (*data.Schema, *order.Preference, error) {
	schema, err := s.svc.Schema(dataset)
	if err != nil {
		return nil, nil, err
	}
	pref, err := data.ParsePreference(schema, spec)
	if err != nil {
		return nil, nil, fmt.Errorf("parsing preference %q: %w", spec, err)
	}
	return schema, pref, nil
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	schema, pref, err := s.parsePref(req.Dataset, req.Preference)
	if err != nil {
		writeError(w, err)
		return
	}
	// The request context rides the whole query path: a disconnected client
	// releases its worker-pool slot and aborts partitioned scans early.
	ids, outcome, err := s.svc.Query(r.Context(), req.Dataset, pref)
	if err != nil {
		writeError(w, err)
		return
	}
	resp := queryResponse{
		Dataset:    req.Dataset,
		Preference: data.FormatPreference(schema, pref),
		Canonical:  data.FormatPreference(schema, pref.Canonical()),
		IDs:        ids,
		Count:      len(ids),
		Cached:     outcome.CacheHit(),
		Semantic:   outcome.Semantic(),
	}
	if req.IncludePoints {
		resp.Points = make([]pointJSON, 0, len(ids))
		for _, id := range ids {
			p, err := s.svc.Point(req.Dataset, id)
			if err != nil {
				// The point was deleted between query and render; skip it.
				continue
			}
			resp.Points = append(resp.Points, renderPoint(schema, id, p))
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// renderPoint converts a point to named attribute values, un-negating
// HigherIsBetter numerics (stored negated so smaller is always better).
func renderPoint(schema *data.Schema, id data.PointID, p data.Point) pointJSON {
	out := pointJSON{
		ID:      id,
		Numeric: make(map[string]float64, len(schema.Numeric)),
		Nominal: make(map[string]string, len(schema.Nominal)),
	}
	for i, a := range schema.Numeric {
		v := p.Num[i]
		if a.HigherIsBetter {
			v = -v
		}
		out.Numeric[a.Name] = v
	}
	for i, d := range schema.Nominal {
		out.Nominal[d.Name()] = d.ValueName(p.Nom[i])
	}
	return out
}

type batchRequest struct {
	Dataset     string   `json:"dataset"`
	Preferences []string `json:"preferences"`
}

type batchMember struct {
	Preference string         `json:"preference"`
	IDs        []data.PointID `json:"ids,omitempty"`
	Count      int            `json:"count"`
	Cached     bool           `json:"cached"`
	Semantic   bool           `json:"semantic,omitempty"`
	Error      string         `json:"error,omitempty"`
	// Code is the member error's machine-readable code (same vocabulary as
	// top-level errorResponse.Code), empty on success.
	Code string `json:"code,omitempty"`
}

type batchResponse struct {
	Dataset string        `json:"dataset"`
	Results []batchMember `json:"results"`
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if len(req.Preferences) > maxBatchPreferences {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: fmt.Sprintf("batch of %d preferences exceeds the limit of %d",
				len(req.Preferences), maxBatchPreferences),
			Code: codeTooLarge,
		})
		return
	}
	schema, err := s.svc.Schema(req.Dataset)
	if err != nil {
		writeError(w, err)
		return
	}
	// Parse everything up front; parse failures are positional errors, and
	// the parsed members run as one pool batch.
	prefs := make([]*order.Preference, len(req.Preferences))
	members := make([]batchMember, len(req.Preferences))
	for i, spec := range req.Preferences {
		members[i].Preference = spec
		p, err := data.ParsePreference(schema, spec)
		if err != nil {
			members[i].Error = err.Error()
			members[i].Code = codeBadRequest
			continue
		}
		prefs[i] = p
		members[i].Preference = data.FormatPreference(schema, p)
	}
	runnable := make([]*order.Preference, 0, len(prefs))
	runIdx := make([]int, 0, len(prefs))
	for i, p := range prefs {
		if p != nil {
			runnable = append(runnable, p)
			runIdx = append(runIdx, i)
		}
	}
	for j, res := range s.svc.Batch(r.Context(), req.Dataset, runnable) {
		m := &members[runIdx[j]]
		if res.Err != nil {
			m.Error = res.Err.Error()
			_, m.Code = classify(res.Err)
			continue
		}
		m.IDs = res.IDs
		m.Count = len(res.IDs)
		m.Cached = res.Outcome.CacheHit()
		m.Semantic = res.Outcome.Semantic()
	}
	writeJSON(w, http.StatusOK, batchResponse{Dataset: req.Dataset, Results: members})
}

// pointInput is one point of a batch insert, keyed by attribute name like the
// pointJSON render (HigherIsBetter numerics arrive un-negated and are negated
// on parse, mirroring CSV load).
type pointInput struct {
	Numeric map[string]float64 `json:"numeric"`
	Nominal map[string]string  `json:"nominal"`
}

type insertRequest struct {
	Dataset string       `json:"dataset"`
	Points  []pointInput `json:"points"`
}

type insertResponse struct {
	Dataset string         `json:"dataset"`
	IDs     []data.PointID `json:"ids"`
	Count   int            `json:"count"`
	// Applied counts the points inserted; it trails len(points) only on a
	// partial failure, which also carries an error status.
	Applied int `json:"applied"`
}

// parsePoint validates one incoming point against the schema, producing the
// in-memory representation (numerics negated where HigherIsBetter, nominal
// labels resolved to dense value ids).
func parsePoint(schema *data.Schema, in pointInput) (service.PointInput, error) {
	out := service.PointInput{
		Num: make([]float64, len(schema.Numeric)),
		Nom: make([]order.Value, len(schema.Nominal)),
	}
	for i, a := range schema.Numeric {
		v, ok := in.Numeric[a.Name]
		if !ok {
			return out, fmt.Errorf("missing numeric attribute %q", a.Name)
		}
		// Valid JSON cannot spell NaN/±Inf (no literals, and out-of-range
		// numbers like 1e999 fail to decode), so over HTTP this is defense
		// in depth; it guards other callers of parsePoint and names the
		// offending attribute, which the store's own rejection does not.
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return out, fmt.Errorf("non-finite value %v for numeric attribute %q", v, a.Name)
		}
		if a.HigherIsBetter {
			v = -v
		}
		out.Num[i] = v
	}
	if len(in.Numeric) != len(schema.Numeric) {
		return out, fmt.Errorf("%d numeric attributes, schema has %d", len(in.Numeric), len(schema.Numeric))
	}
	for i, d := range schema.Nominal {
		name, ok := in.Nominal[d.Name()]
		if !ok {
			return out, fmt.Errorf("missing nominal attribute %q", d.Name())
		}
		v, ok := d.Lookup(name)
		if !ok {
			return out, fmt.Errorf("unknown value %q for attribute %q", name, d.Name())
		}
		out.Nom[i] = v
	}
	if len(in.Nominal) != len(schema.Nominal) {
		return out, fmt.Errorf("%d nominal attributes, schema has %d", len(in.Nominal), len(schema.Nominal))
	}
	return out, nil
}

func (s *server) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req insertRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if len(req.Points) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "no points to insert", Code: codeBadRequest})
		return
	}
	if len(req.Points) > maxBatchMutations {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{
			Error: fmt.Sprintf("batch of %d points exceeds the limit of %d", len(req.Points), maxBatchMutations),
			Code:  codeTooLarge,
		})
		return
	}
	schema, err := s.svc.Schema(req.Dataset)
	if err != nil {
		writeError(w, err)
		return
	}
	// Parse the whole batch before mutating anything, so a malformed member
	// rejects the request instead of leaving it half-applied.
	pts := make([]service.PointInput, len(req.Points))
	for i, in := range req.Points {
		if pts[i], err = parsePoint(schema, in); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("point %d: %v", i, err), Code: codeBadRequest})
			return
		}
	}
	ids, err := s.svc.InsertBatch(req.Dataset, pts)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, insertResponse{
		Dataset: req.Dataset,
		IDs:     ids,
		Count:   len(ids),
		Applied: len(ids),
	})
}

type deleteRequest struct {
	Dataset string         `json:"dataset"`
	IDs     []data.PointID `json:"ids"`
}

type deleteResponse struct {
	Dataset string `json:"dataset"`
	Applied int    `json:"applied"`
}

func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req deleteRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if len(req.IDs) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "no ids to delete", Code: codeBadRequest})
		return
	}
	if len(req.IDs) > maxBatchMutations {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{
			Error: fmt.Sprintf("batch of %d ids exceeds the limit of %d", len(req.IDs), maxBatchMutations),
			Code:  codeTooLarge,
		})
		return
	}
	applied, err := s.svc.DeleteBatch(req.Dataset, req.IDs)
	if err != nil {
		// Unknown ids map to 404; the error text carries how many of the
		// batch landed before the failing member.
		writeError(w, fmt.Errorf("%w (applied %d/%d)", err, applied, len(req.IDs)))
		return
	}
	writeJSON(w, http.StatusOK, deleteResponse{Dataset: req.Dataset, Applied: applied})
}
