package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prefsky/internal/cluster"
	"prefsky/internal/data"
	"prefsky/internal/dominance"
	"prefsky/internal/gen"
	"prefsky/internal/service"
	"prefsky/internal/skyline"
)

// chaosShard is one in-process shard whose process lifecycle the test
// controls: kill (refuse with 503), restart (fresh empty service — the
// coordinator must re-push before it serves again).
type chaosShard struct {
	srv   *httptest.Server
	mu    sync.Mutex
	inner http.Handler
	down  atomic.Bool
}

func (s *chaosShard) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.down.Load() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"killed","code":"down"}`)
		return
	}
	s.mu.Lock()
	h := s.inner
	s.mu.Unlock()
	h.ServeHTTP(w, r)
}

func (s *chaosShard) restart() {
	s.mu.Lock()
	s.inner = cluster.NewShardHandler(service.New(service.Options{}), service.EngineConfig{Kind: "sfsd"})
	s.mu.Unlock()
	s.down.Store(false)
}

// startClusterServer boots n chaos shards, a coordinator over them (probe
// loop off — tests drive repair with ProbeOnce) and the coordinator HTTP
// front end.
func startClusterServer(t *testing.T, n int, ds *data.Dataset) (*httptest.Server, *cluster.Coordinator, []*chaosShard) {
	t.Helper()
	shards := make([]*chaosShard, n)
	specs := make([]cluster.ShardSpec, n)
	for i := range shards {
		shards[i] = &chaosShard{}
		shards[i].restart()
		shards[i].srv = httptest.NewServer(shards[i])
		t.Cleanup(shards[i].srv.Close)
		specs[i] = cluster.ShardSpec{URLs: []string{shards[i].srv.URL}}
	}
	co, err := cluster.New(specs, cluster.Options{ProbeInterval: -1, Client: cluster.ClientOptions{Timeout: 2 * time.Second}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Close)
	if err := co.AddDataset(context.Background(), "d", ds); err != nil {
		t.Fatal(err)
	}
	cs := newCoordServer(co)
	cs.markReady()
	front := httptest.NewServer(cs)
	t.Cleanup(front.Close)
	return front, co, shards
}

func clusterOracle(t *testing.T, ds *data.Dataset, pts []data.Point, spec string) []data.PointID {
	t.Helper()
	pref, err := data.ParsePreference(ds.Schema(), spec)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := dominance.NewComparator(ds.Schema(), pref.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	return skyline.SFS(pts, cmp)
}

func postQuery(t *testing.T, url, body string) (*http.Response, coordQueryResponse, errorResponse) {
	t.Helper()
	resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ok coordQueryResponse
	var bad errorResponse
	var raw json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &ok); err != nil {
			t.Fatal(err)
		}
	} else if err := json.Unmarshal(raw, &bad); err != nil {
		t.Fatal(err)
	}
	return resp, ok, bad
}

func clusterDataset(t *testing.T, n int) *data.Dataset {
	t.Helper()
	ds, err := gen.Dataset(gen.Config{
		N: n, NumDims: 2, NomDims: 2, Cardinality: 6, Theta: 0.7,
		Kind: gen.AntiCorrelated, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// The HTTP status-code contract for cluster failures: strict unavailability
// is a retryable 503 with code "shard_unavailable"; version skew and
// malformed shard answers are 502 with code "shard-protocol"; /readyz stays
// 200 with the unreachable shard listed.
func TestClusterErrorStatusCodes(t *testing.T) {
	ds := clusterDataset(t, 1500)
	front, co, shards := startClusterServer(t, 2, ds)

	// Kill shard 1: strict → 503 shard_unavailable (+Retry-After), lenient →
	// 200 flagged partial.
	shards[1].down.Store(true)
	resp, _, bad := postQuery(t, front.URL, `{"dataset":"d","preference":"nom0: v0<*"}`)
	if resp.StatusCode != http.StatusServiceUnavailable || bad.Code != codeShardUnavailable {
		t.Fatalf("strict with dead shard: status %d code %q, want 503 %q", resp.StatusCode, bad.Code, codeShardUnavailable)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	resp, okBody, _ := postQuery(t, front.URL, `{"dataset":"d","preference":"nom0: v0<*","on_unavailable":"superset"}`)
	if resp.StatusCode != http.StatusOK || !okBody.Partial || len(okBody.Unavailable) != 1 {
		t.Fatalf("lenient with dead shard: status %d partial %v unavailable %v", resp.StatusCode, okBody.Partial, okBody.Unavailable)
	}

	// /readyz stays ready, listing the unreachable shard after a probe.
	co.ProbeOnce(context.Background())
	rz, err := http.Get(front.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready struct {
		Status      string   `json:"status"`
		Unreachable []string `json:"unreachable"`
	}
	json.NewDecoder(rz.Body).Decode(&ready)
	rz.Body.Close()
	if rz.StatusCode != http.StatusOK || ready.Status != "ready" || len(ready.Unreachable) != 1 {
		t.Errorf("/readyz = %d %+v, want 200 ready with 1 unreachable", rz.StatusCode, ready)
	}

	// /v1/stats carries per-shard health and counters.
	st, err := http.Get(front.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats cluster.Stats
	json.NewDecoder(st.Body).Decode(&stats)
	st.Body.Close()
	if len(stats.Shards) != 2 {
		t.Fatalf("stats lists %d shards", len(stats.Shards))
	}
	states := map[string]string{}
	for _, sh := range stats.Shards {
		states[sh.Name] = sh.State
	}
	if states[shards[1].srv.URL] != "unreachable" || states[shards[0].srv.URL] != "ok" {
		t.Errorf("shard states = %v", states)
	}

	// Rejoin, then force version skew on shard 1: a deterministic 502 under
	// either policy.
	shards[1].restart()
	co.ProbeOnce(context.Background())
	shards[1].mu.Lock()
	shards[1].inner = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"proto": cluster.ProtoVersion + 1})
	})
	shards[1].mu.Unlock()
	for _, policy := range []string{"fail", "superset"} {
		resp, _, bad = postQuery(t, front.URL,
			fmt.Sprintf(`{"dataset":"d","preference":"nom1: v0<*","on_unavailable":%q}`, policy))
		if resp.StatusCode != http.StatusBadGateway || bad.Code != codeShardProtocol {
			t.Errorf("version skew (%s): status %d code %q, want 502 %q", policy, resp.StatusCode, bad.Code, codeShardProtocol)
		}
	}
}

// The chaos satellite: shards die and rejoin mid-hammer while concurrent
// strict and lenient queries verify the failure policy exactly — strict
// queries either serve the full oracle or fail typed; lenient queries serve
// either the full oracle or exactly SKY(live shards), flagged, and always a
// superset of the live part of the true skyline. Run under -race in CI.
func TestClusterChaosKillRejoin(t *testing.T) {
	ds := clusterDataset(t, 2500)
	front, co, shards := startClusterServer(t, 3, ds)
	parts, err := cluster.Split(ds, 3, cluster.HashPartitioner{})
	if err != nil {
		t.Fatal(err)
	}
	live01 := append(append([]data.Point{}, parts[0]...), parts[1]...)

	specs := []string{"", "nom0: v1<v0<*", "nom1: v0<*"}
	fullOracle := make(map[string][]data.PointID, len(specs))
	liveOracle := make(map[string][]data.PointID, len(specs))
	for _, spec := range specs {
		fullOracle[spec] = clusterOracle(t, ds, ds.Points(), spec)
		liveOracle[spec] = clusterOracle(t, ds, live01, spec)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	hammer := func(worker int) {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			spec := specs[(worker+i)%len(specs)]
			lenient := (worker+i)%2 == 0
			body := fmt.Sprintf(`{"dataset":"d","preference":%q}`, spec)
			if lenient {
				body = fmt.Sprintf(`{"dataset":"d","preference":%q,"on_unavailable":"superset"}`, spec)
			}
			resp, ok, bad := postQuery(t, front.URL, body)
			switch {
			case resp.StatusCode == http.StatusOK && !ok.Partial:
				if !reflect.DeepEqual(ok.IDs, fullOracle[spec]) {
					t.Errorf("full result for %q diverged from oracle (%d ids, want %d)", spec, len(ok.IDs), len(fullOracle[spec]))
					return
				}
			case resp.StatusCode == http.StatusOK && ok.Partial:
				if !lenient {
					t.Errorf("strict query returned a partial result")
					return
				}
				if len(ok.Unavailable) != 1 || ok.Unavailable[0] != shards[2].srv.URL {
					t.Errorf("partial result blames %v, want [%s]", ok.Unavailable, shards[2].srv.URL)
					return
				}
				if !reflect.DeepEqual(ok.IDs, liveOracle[spec]) {
					t.Errorf("partial result for %q != SKY(live shards) (%d ids, want %d)", spec, len(ok.IDs), len(liveOracle[spec]))
					return
				}
			case resp.StatusCode == http.StatusServiceUnavailable:
				if lenient {
					// Only an all-shards-down scatter may 503 a lenient query,
					// and this chaos schedule never kills shards 0 and 1.
					t.Errorf("lenient query shed with 503: %s", bad.Error)
					return
				}
				if bad.Code != codeShardUnavailable {
					t.Errorf("strict 503 code = %q, want %q", bad.Code, codeShardUnavailable)
					return
				}
			default:
				t.Errorf("unexpected status %d (%s %s)", resp.StatusCode, bad.Code, bad.Error)
				return
			}
		}
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go hammer(w)
	}

	// The chaos schedule: kill shard 2, let strict queries fail and lenient
	// ones degrade, then restart it empty and repair via probe; repeat.
	for cycle := 0; cycle < 5; cycle++ {
		time.Sleep(60 * time.Millisecond)
		shards[2].down.Store(true)
		time.Sleep(60 * time.Millisecond)
		shards[2].restart()
		co.ProbeOnce(context.Background())
	}
	close(stop)
	wg.Wait()
}
