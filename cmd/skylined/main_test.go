package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"prefsky"
	"prefsky/internal/data"
	"prefsky/internal/service"
)

func demoServer(t *testing.T) (http.Handler, *data.Dataset) {
	t.Helper()
	ds, err := demoFlights()
	if err != nil {
		t.Fatal(err)
	}
	svc := service.New(service.Options{})
	err = svc.AddDataset("flights", ds, service.EngineConfig{Kind: "sfsa"})
	if err != nil {
		t.Fatal(err)
	}
	return newServer(svc), ds
}

func doJSON(t *testing.T, h http.Handler, method, path string, body, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil {
		if err := json.NewDecoder(rec.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec.Code
}

func TestHealthzAndDatasets(t *testing.T) {
	h, ds := demoServer(t)
	var health map[string]string
	if code := doJSON(t, h, "GET", "/healthz", nil, &health); code != 200 {
		t.Fatalf("healthz: %d", code)
	}
	if health["status"] != "ok" {
		t.Errorf("healthz = %v", health)
	}
	var resp struct {
		Datasets []service.DatasetInfo `json:"datasets"`
	}
	if code := doJSON(t, h, "GET", "/v1/datasets", nil, &resp); code != 200 {
		t.Fatalf("datasets: %d", code)
	}
	if len(resp.Datasets) != 1 || resp.Datasets[0].Name != "flights" || resp.Datasets[0].Points != ds.N() {
		t.Errorf("datasets = %+v", resp.Datasets)
	}
}

func TestQueryMatchesLibrary(t *testing.T) {
	h, ds := demoServer(t)
	const spec = "Airline: Gonna<Polar<*; Transit: AMS<FRA<*"
	pref, err := prefsky.ParsePreference(ds.Schema(), spec)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := prefsky.NewSFSD(ds)
	if err != nil {
		t.Fatal(err)
	}
	want, err := baseline.Skyline(context.Background(), pref)
	if err != nil {
		t.Fatal(err)
	}

	var resp queryResponse
	code := doJSON(t, h, "POST", "/v1/query",
		queryRequest{Dataset: "flights", Preference: spec, IncludePoints: true}, &resp)
	if code != 200 {
		t.Fatalf("query: %d", code)
	}
	if !reflect.DeepEqual(resp.IDs, want) {
		t.Errorf("server ids = %v, library ids = %v", resp.IDs, want)
	}
	if resp.Count != len(want) || resp.Cached {
		t.Errorf("count=%d cached=%v, want %d false", resp.Count, resp.Cached, len(want))
	}
	if len(resp.Points) != len(want) {
		t.Fatalf("points = %d, want %d", len(resp.Points), len(want))
	}
	// Points carry named, un-negated attribute values.
	p0 := resp.Points[0]
	if p0.ID != want[0] || p0.Numeric["Fare"] <= 0 || p0.Nominal["Airline"] == "" {
		t.Errorf("rendered point = %+v", p0)
	}
}

func TestCanonicallyEqualQueriesHitCache(t *testing.T) {
	h, _ := demoServer(t)
	// A total order on Transit vs. its forced-last prefix: syntactically
	// different, canonically equal. The airline dimension is identical.
	specA := "Airline: Gonna<*; Transit: AMS<FRA<IST<DXB<KEF<JFK"
	specB := "Airline: Gonna<*; Transit: AMS<FRA<IST<DXB<KEF<*"

	var a, bResp queryResponse
	if code := doJSON(t, h, "POST", "/v1/query", queryRequest{Dataset: "flights", Preference: specA}, &a); code != 200 {
		t.Fatalf("query A: %d", code)
	}
	if a.Cached {
		t.Error("first query reported cached")
	}
	if code := doJSON(t, h, "POST", "/v1/query", queryRequest{Dataset: "flights", Preference: specB}, &bResp); code != 200 {
		t.Fatalf("query B: %d", code)
	}
	if !bResp.Cached {
		t.Error("canonically equal query missed the cache")
	}
	if !reflect.DeepEqual(a.IDs, bResp.IDs) {
		t.Errorf("ids diverged: %v vs %v", a.IDs, bResp.IDs)
	}
	if a.Canonical != bResp.Canonical {
		t.Errorf("canonical forms differ: %q vs %q", a.Canonical, bResp.Canonical)
	}

	var st service.Stats
	if code := doJSON(t, h, "GET", "/v1/stats", nil, &st); code != 200 {
		t.Fatalf("stats: %d", code)
	}
	if st.Cache.Hits == 0 {
		t.Errorf("stats shows no cache hits: %+v", st.Cache)
	}
	if st.Queries != 2 {
		t.Errorf("Queries = %d, want 2", st.Queries)
	}
}

func TestBatchEndpoint(t *testing.T) {
	h, _ := demoServer(t)
	var resp batchResponse
	code := doJSON(t, h, "POST", "/v1/batch", batchRequest{
		Dataset: "flights",
		Preferences: []string{
			"Airline: Gonna<*",
			"Airline: Nonsense<*", // parse error: positional, not fatal
			"Airline: Gonna<*",    // duplicate: canonical twin of [0]
		},
	}, &resp)
	if code != 200 {
		t.Fatalf("batch: %d", code)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(resp.Results))
	}
	if resp.Results[0].Error != "" || resp.Results[0].Count == 0 {
		t.Errorf("member 0 = %+v", resp.Results[0])
	}
	if resp.Results[1].Error == "" {
		t.Error("bad preference produced no error")
	}
	if !reflect.DeepEqual(resp.Results[0].IDs, resp.Results[2].IDs) {
		t.Errorf("duplicate members disagree: %v vs %v", resp.Results[0].IDs, resp.Results[2].IDs)
	}
}

func TestErrorStatuses(t *testing.T) {
	h, _ := demoServer(t)
	var e errorResponse
	if code := doJSON(t, h, "POST", "/v1/query", queryRequest{Dataset: "nope", Preference: ""}, &e); code != 404 {
		t.Errorf("unknown dataset: %d, want 404", code)
	}
	if code := doJSON(t, h, "POST", "/v1/query", queryRequest{Dataset: "flights", Preference: "Bogus: x<*"}, &e); code != 400 {
		t.Errorf("bad preference: %d, want 400", code)
	}
	req := httptest.NewRequest("POST", "/v1/query", bytes.NewBufferString("{not json"))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 400 {
		t.Errorf("malformed body: %d, want 400", rec.Code)
	}
}

// TestRequestHardening covers the serving-layer input bounds: unknown
// fields, oversized bodies and oversized batches are rejected before any
// engine work.
func TestRequestHardening(t *testing.T) {
	h, _ := demoServer(t)

	t.Run("unknown field", func(t *testing.T) {
		req := httptest.NewRequest("POST", "/v1/query",
			bytes.NewBufferString(`{"dataset":"flights","preferense":"Airline: Gonna<*"}`))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 400 {
			t.Errorf("typo'd field: %d, want 400", rec.Code)
		}
	})

	t.Run("oversized body", func(t *testing.T) {
		big := bytes.Repeat([]byte("x"), maxBodyBytes+1024)
		body, _ := json.Marshal(queryRequest{Dataset: "flights", Preference: string(big)})
		req := httptest.NewRequest("POST", "/v1/query", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusRequestEntityTooLarge {
			t.Errorf("oversized body: %d, want 413", rec.Code)
		}
	})

	t.Run("oversized batch", func(t *testing.T) {
		prefs := make([]string, maxBatchPreferences+1)
		for i := range prefs {
			prefs[i] = "Airline: Gonna<*"
		}
		var e errorResponse
		code := doJSON(t, h, "POST", "/v1/batch", batchRequest{Dataset: "flights", Preferences: prefs}, &e)
		if code != 400 {
			t.Errorf("oversized batch: %d, want 400", code)
		}
		if e.Error == "" {
			t.Error("oversized batch: empty error message")
		}
	})

	t.Run("batch at limit accepted", func(t *testing.T) {
		prefs := make([]string, 4)
		for i := range prefs {
			prefs[i] = "Airline: Gonna<*"
		}
		var resp batchResponse
		if code := doJSON(t, h, "POST", "/v1/batch", batchRequest{Dataset: "flights", Preferences: prefs}, &resp); code != 200 {
			t.Errorf("small batch: %d, want 200", code)
		}
	})
}

// TestParallelEngineServes runs the demo dataset behind parallel-sfs and
// checks the served ids against the sequential baseline.
func TestParallelEngineServes(t *testing.T) {
	ds, err := demoFlights()
	if err != nil {
		t.Fatal(err)
	}
	svc := service.New(service.Options{QueryTimeout: time.Minute})
	if err := svc.AddDataset("flights", ds, service.EngineConfig{Kind: "parallel-sfs", Partitions: 4}); err != nil {
		t.Fatal(err)
	}
	h := newServer(svc)
	const spec = "Airline: Gonna<Polar<*; Transit: AMS<FRA<*"
	pref, err := prefsky.ParsePreference(ds.Schema(), spec)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := prefsky.NewSFSD(ds)
	if err != nil {
		t.Fatal(err)
	}
	want, err := baseline.Skyline(context.Background(), pref)
	if err != nil {
		t.Fatal(err)
	}
	var resp queryResponse
	if code := doJSON(t, h, "POST", "/v1/query", queryRequest{Dataset: "flights", Preference: spec}, &resp); code != 200 {
		t.Fatalf("query: %d", code)
	}
	if !reflect.DeepEqual(resp.IDs, want) {
		t.Errorf("parallel-sfs ids = %v, want %v", resp.IDs, want)
	}
}

// TestClientDisconnectCanceled: a request whose context is already canceled
// (the client hung up before the query ran) is answered with the 499
// convention and, crucially, without engine work.
func TestClientDisconnectCanceled(t *testing.T) {
	h, _ := demoServer(t)
	body, _ := json.Marshal(queryRequest{Dataset: "flights", Preference: "Airline: Gonna<*"})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("POST", "/v1/query", bytes.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 499 {
		t.Errorf("canceled request: %d, want 499", rec.Code)
	}
}

func TestLoadDatasetFromFiles(t *testing.T) {
	dir := t.TempDir()
	schemaPath := filepath.Join(dir, "schema.json")
	csvPath := filepath.Join(dir, "data.csv")
	schema := `{"numeric":[{"name":"Price"},{"name":"Hotel-class","higherIsBetter":true}],
	            "nominal":[{"name":"Hotel-group","values":["T","H","M"]}]}`
	csv := "Price,Hotel-class,Hotel-group\n1600,4,T\n2400,1,T\n3000,5,H\n3600,4,H\n2400,2,M\n3000,3,M\n"
	if err := os.WriteFile(schemaPath, []byte(schema), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(csvPath, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}

	name, ds, err := loadDataset("hotels=" + schemaPath + "," + csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if name != "hotels" || ds.N() != 6 {
		t.Fatalf("loaded %q with %d points", name, ds.N())
	}

	svc := service.New(service.Options{})
	if err := svc.AddDataset(name, ds, service.EngineConfig{Kind: "hybrid"}); err != nil {
		t.Fatal(err)
	}
	h := newServer(svc)
	var resp queryResponse
	code := doJSON(t, h, "POST", "/v1/query",
		queryRequest{Dataset: "hotels", Preference: "Hotel-group: T<M<*"}, &resp)
	if code != 200 {
		t.Fatalf("query: %d", code)
	}
	// Table 2 of the paper: Alice's skyline is {a, c} = ids {0, 2}.
	if !reflect.DeepEqual(resp.IDs, []data.PointID{0, 2}) {
		t.Errorf("ids = %v, want [0 2]", resp.IDs)
	}

	for _, bad := range []string{"noequals", "x=onlyschema"} {
		if _, _, err := loadDataset(bad); err == nil {
			t.Errorf("loadDataset(%q) succeeded", bad)
		}
	}
}

// maintServer builds a server whose dataset runs the given engine kind.
func maintServer(t *testing.T, cfg service.EngineConfig) (http.Handler, *data.Dataset) {
	t.Helper()
	ds, err := demoFlights()
	if err != nil {
		t.Fatal(err)
	}
	svc := service.New(service.Options{})
	if err := svc.AddDataset("flights", ds, cfg); err != nil {
		t.Fatal(err)
	}
	return newServer(svc), ds
}

// TestInsertDeleteEndpoints: batch mutations land, queries reflect them, and
// the stats endpoint reports the store's snapshot shape.
func TestInsertDeleteEndpoints(t *testing.T) {
	for _, kind := range []string{"sfsa", "sfsd", "parallel-sfs"} {
		h, _ := maintServer(t, service.EngineConfig{Kind: kind})

		// A dominating flight: cheapest, shortest, best airline/transit.
		pt := pointInput{
			Numeric: map[string]float64{"Fare": 1, "Hours": 1, "Stops": 0},
			Nominal: map[string]string{"Airline": "Gonna", "Transit": "AMS"},
		}
		var ins insertResponse
		if code := doJSON(t, h, "POST", "/v1/insert",
			insertRequest{Dataset: "flights", Points: []pointInput{pt, pt}}, &ins); code != 200 {
			t.Fatalf("%s: insert: %d", kind, code)
		}
		if ins.Count != 2 || ins.Applied != 2 || len(ins.IDs) != 2 {
			t.Fatalf("%s: insert response %+v", kind, ins)
		}

		var q queryResponse
		if code := doJSON(t, h, "POST", "/v1/query",
			queryRequest{Dataset: "flights", Preference: "Airline: Gonna<*; Transit: AMS<*", IncludePoints: true}, &q); code != 200 {
			t.Fatalf("%s: query: %d", kind, code)
		}
		if !reflect.DeepEqual(q.IDs, ins.IDs) {
			t.Errorf("%s: skyline after dominating insert = %v, want %v", kind, q.IDs, ins.IDs)
		}
		if len(q.Points) != 2 || q.Points[0].Numeric["Fare"] != 1 {
			t.Errorf("%s: rendered points %+v", kind, q.Points)
		}

		var del deleteResponse
		if code := doJSON(t, h, "POST", "/v1/delete",
			deleteRequest{Dataset: "flights", IDs: ins.IDs}, &del); code != 200 {
			t.Fatalf("%s: delete: %d", kind, code)
		}
		if del.Applied != 2 {
			t.Errorf("%s: delete applied %d, want 2", kind, del.Applied)
		}

		// Deleting again: 404 with zero applied.
		var e errorResponse
		if code := doJSON(t, h, "POST", "/v1/delete",
			deleteRequest{Dataset: "flights", IDs: ins.IDs}, &e); code != 404 {
			t.Errorf("%s: double delete: %d, want 404", kind, code)
		}

		// Stats expose the snapshot shape.
		var st service.Stats
		if code := doJSON(t, h, "GET", "/v1/stats", nil, &st); code != 200 {
			t.Fatalf("%s: stats: %d", kind, code)
		}
		if len(st.Datasets) != 1 || st.Datasets[0].Store == nil {
			t.Fatalf("%s: stats missing store: %+v", kind, st.Datasets)
		}
		sst := st.Datasets[0].Store
		if sst.Inserts != 2 || sst.Deletes != 2 || sst.Version != 4 {
			t.Errorf("%s: store stats %+v", kind, sst)
		}
	}
}

// TestMutationErrorStatuses: malformed points 400, oversized batches 413,
// unknown ids 404, read-only datasets 409.
func TestMutationErrorStatuses(t *testing.T) {
	h, _ := demoServer(t)
	var e errorResponse

	if code := doJSON(t, h, "POST", "/v1/insert", insertRequest{Dataset: "nope",
		Points: []pointInput{{Numeric: map[string]float64{}, Nominal: map[string]string{}}}}, &e); code != 404 {
		t.Errorf("unknown dataset: %d, want 404", code)
	}
	if code := doJSON(t, h, "POST", "/v1/insert", insertRequest{Dataset: "flights"}, &e); code != 400 {
		t.Errorf("empty batch: %d, want 400", code)
	}
	if code := doJSON(t, h, "POST", "/v1/insert", insertRequest{Dataset: "flights",
		Points: []pointInput{{Numeric: map[string]float64{"Fare": 1}, Nominal: map[string]string{}}}}, &e); code != 400 {
		t.Errorf("missing attributes: %d, want 400", code)
	}
	if code := doJSON(t, h, "POST", "/v1/insert", insertRequest{Dataset: "flights",
		Points: []pointInput{{
			Numeric: map[string]float64{"Fare": 1, "Hours": 1, "Stops": 0},
			Nominal: map[string]string{"Airline": "NoSuchAirline", "Transit": "AMS"},
		}}}, &e); code != 400 {
		t.Errorf("unknown nominal value: %d, want 400", code)
	}
	big := make([]pointInput, maxBatchMutations+1)
	for i := range big {
		big[i] = pointInput{
			Numeric: map[string]float64{"Fare": 1, "Hours": 1, "Stops": 0},
			Nominal: map[string]string{"Airline": "Gonna", "Transit": "AMS"},
		}
	}
	if code := doJSON(t, h, "POST", "/v1/insert", insertRequest{Dataset: "flights", Points: big}, &e); code != 413 {
		t.Errorf("oversized insert batch: %d, want 413", code)
	}
	bigIDs := make([]data.PointID, maxBatchMutations+1)
	if code := doJSON(t, h, "POST", "/v1/delete", deleteRequest{Dataset: "flights", IDs: bigIDs}, &e); code != 413 {
		t.Errorf("oversized delete batch: %d, want 413", code)
	}
	if code := doJSON(t, h, "POST", "/v1/delete", deleteRequest{Dataset: "flights", IDs: []data.PointID{999999}}, &e); code != 404 {
		t.Errorf("unknown point id: %d, want 404", code)
	}

	// Explicitly frozen dataset: 409.
	hro, _ := maintServer(t, service.EngineConfig{Kind: "sfsd", ReadOnly: true})
	if code := doJSON(t, hro, "POST", "/v1/delete", deleteRequest{Dataset: "flights", IDs: []data.PointID{0}}, &e); code != 409 {
		t.Errorf("read-only delete: %d, want 409", code)
	}
	if code := doJSON(t, hro, "POST", "/v1/insert", insertRequest{Dataset: "flights",
		Points: []pointInput{{
			Numeric: map[string]float64{"Fare": 1, "Hours": 1, "Stops": 0},
			Nominal: map[string]string{"Airline": "Gonna", "Transit": "AMS"},
		}}}, &e); code != 409 {
		t.Errorf("read-only insert: %d, want 409", code)
	}
}
