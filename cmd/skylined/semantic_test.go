package main

import (
	"bytes"
	"math"
	"net/http/httptest"
	"reflect"
	"testing"

	"prefsky"
	"prefsky/internal/service"
)

// TestSemanticQueryEndpoint: a refined preference whose coarser parent is
// cached is served from the lattice — the response carries semantic:true,
// cached:false, the ids match a cold baseline, and /v1/stats exposes the
// semantic-hit counter.
func TestSemanticQueryEndpoint(t *testing.T) {
	h, ds := demoServer(t)

	var cold queryResponse
	if code := doJSON(t, h, "POST", "/v1/query",
		queryRequest{Dataset: "flights", Preference: "Airline: Gonna<*"}, &cold); code != 200 {
		t.Fatalf("coarse query: %d", code)
	}
	if cold.Cached || cold.Semantic {
		t.Fatalf("coarse query: cached=%v semantic=%v, want cold", cold.Cached, cold.Semantic)
	}

	var sem queryResponse
	if code := doJSON(t, h, "POST", "/v1/query",
		queryRequest{Dataset: "flights", Preference: "Airline: Gonna<Polar<*"}, &sem); code != 200 {
		t.Fatalf("refined query: %d", code)
	}
	if !sem.Semantic || sem.Cached {
		t.Fatalf("refined query: cached=%v semantic=%v, want semantic", sem.Cached, sem.Semantic)
	}
	pref, err := prefsky.ParsePreference(ds.Schema(), "Airline: Gonna<Polar<*")
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := prefsky.NewSFSD(ds)
	if err != nil {
		t.Fatal(err)
	}
	want, err := baseline.Skyline(t.Context(), pref)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sem.IDs, want) {
		t.Fatalf("semantic ids %v, want %v", sem.IDs, want)
	}

	// The served result lives under its own key now.
	var hot queryResponse
	if code := doJSON(t, h, "POST", "/v1/query",
		queryRequest{Dataset: "flights", Preference: "Airline: Gonna<Polar<*"}, &hot); code != 200 {
		t.Fatalf("hot query: %d", code)
	}
	if !hot.Cached || hot.Semantic {
		t.Fatalf("hot query: cached=%v semantic=%v, want exact hit", hot.Cached, hot.Semantic)
	}

	var st service.Stats
	if code := doJSON(t, h, "GET", "/v1/stats", nil, &st); code != 200 {
		t.Fatalf("stats: %d", code)
	}
	if st.Cache.SemanticHits != 1 {
		t.Errorf("stats semanticHits = %d, want 1", st.Cache.SemanticHits)
	}
	if st.Cache.Hits != 1 || st.Cache.Misses != 2 {
		t.Errorf("stats cache = %+v, want 1 hit / 2 misses", st.Cache)
	}
}

// TestBatchReportsSemanticMembers: batch members answered from the lattice
// carry semantic:true.
func TestBatchReportsSemanticMembers(t *testing.T) {
	h, _ := demoServer(t)
	var warm queryResponse
	if code := doJSON(t, h, "POST", "/v1/query",
		queryRequest{Dataset: "flights", Preference: "Transit: AMS<*"}, &warm); code != 200 {
		t.Fatalf("warmup: %d", code)
	}
	var resp batchResponse
	if code := doJSON(t, h, "POST", "/v1/batch", batchRequest{
		Dataset:     "flights",
		Preferences: []string{"Transit: AMS<FRA<*"},
	}, &resp); code != 200 {
		t.Fatalf("batch: %d", code)
	}
	if len(resp.Results) != 1 || resp.Results[0].Error != "" {
		t.Fatalf("batch results %+v", resp.Results)
	}
	if !resp.Results[0].Semantic || resp.Results[0].Cached {
		t.Errorf("batch member cached=%v semantic=%v, want semantic",
			resp.Results[0].Cached, resp.Results[0].Semantic)
	}
}

// TestInsertRejectsNonFiniteNumerics: non-finite numerics cannot reach the
// store through /v1/insert — oversized exponents die in JSON decoding and
// NaN/Inf values die in point parsing, both as 400s with nothing applied.
func TestInsertRejectsNonFiniteNumerics(t *testing.T) {
	h, _ := maintServer(t, service.EngineConfig{Kind: "sfsd"})

	// "1e999" is valid JSON syntax but overflows float64: 400 at decode.
	raw := `{"dataset":"flights","points":[{"numeric":{"Fare":1e999,"Hours":1,"Stops":0},` +
		`"nominal":{"Airline":"Gonna","Transit":"AMS"}}]}`
	req := httptest.NewRequest("POST", "/v1/insert", bytes.NewBufferString(raw))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 400 {
		t.Errorf("oversized exponent: %d, want 400", rec.Code)
	}

	// A NaN smuggled past decoding (exercised directly against the parser,
	// since JSON itself cannot spell it) is refused with the attribute named.
	ds, err := demoFlights()
	if err != nil {
		t.Fatal(err)
	}
	_, err = parsePoint(ds.Schema(), pointInput{
		Numeric: map[string]float64{"Fare": math.NaN(), "Hours": 1, "Stops": 0},
		Nominal: map[string]string{"Airline": "Gonna", "Transit": "AMS"},
	})
	if err == nil {
		t.Fatal("parsePoint accepted NaN")
	}
	_, err = parsePoint(ds.Schema(), pointInput{
		Numeric: map[string]float64{"Fare": 1, "Hours": math.Inf(1), "Stops": 0},
		Nominal: map[string]string{"Airline": "Gonna", "Transit": "AMS"},
	})
	if err == nil {
		t.Fatal("parsePoint accepted +Inf")
	}

	// Nothing was applied: the store is untouched.
	var st service.Stats
	if code := doJSON(t, h, "GET", "/v1/stats", nil, &st); code != 200 {
		t.Fatalf("stats: %d", code)
	}
	if st.Datasets[0].Store.Inserts != 0 || st.Datasets[0].Store.Version != 0 {
		t.Errorf("store mutated by rejected inserts: %+v", st.Datasets[0].Store)
	}
}
