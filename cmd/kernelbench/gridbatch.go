package main

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"slices"
	"time"

	"prefsky/internal/bench/export"
	"prefsky/internal/data"
	"prefsky/internal/dominance"
	"prefsky/internal/flat"
	"prefsky/internal/order"
)

// The grid scenario measures what coarse-grid cell pruning buys a cold flat
// SFS-D scan: both sides project and scan the same block under the same
// preference, one with the grid forced off (the dense rank-column scan), one
// with it forced on (per-iteration lazy grid build included, so the cost of
// building the summaries counts against the win). The acceptance figure is
// grid/speedup-dense-vs-grid-p50 (target >= 1.5x at N=100k).
//
// The batch scenario measures the shared-scan /v1/batch kernel: B
// preferences sharing a top choice per dimension but refining differently
// below it, answered once by a per-preference Project + SkylineRange loop
// and once by Snapshot.SkylineBatch's single meet-ordered pass. The
// acceptance figure is batch/speedup-loop-vs-vectorized (target >= 3x at
// B=64, N=100k).

// gridBatchReps is how many timed repetitions feed each percentile.
const gridBatchReps = 15

func percentileNs(lats []time.Duration, q float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	s := slices.Clone(lats)
	slices.Sort(s)
	return float64(s[int(q*float64(len(s)-1))])
}

func meanNs(lats []time.Duration) float64 {
	if len(lats) == 0 {
		return 0
	}
	sum := 0.0
	for _, l := range lats {
		sum += float64(l)
	}
	return sum / float64(len(lats))
}

// runGrid times the cold flat SFS-D scan dense vs grid-pruned, verifying the
// two skylines are identical first.
func runGrid(report *export.Report, ds *data.Dataset, cmp *dominance.Comparator, n int, kind fmt.Stringer) error {
	blk := flat.NewBlock(ds)
	check := func(mode flat.GridMode) ([]data.PointID, error) {
		proj, err := blk.Project(cmp)
		if err != nil {
			return nil, err
		}
		proj.SetGridMode(mode)
		return proj.Skyline(), nil
	}
	dense, err := check(flat.GridOff)
	if err != nil {
		return err
	}
	grid, err := check(flat.GridOn)
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(dense, grid) {
		return fmt.Errorf("grid scan disagrees with dense: %d vs %d ids", len(grid), len(dense))
	}

	measure := func(mode flat.GridMode) ([]time.Duration, error) {
		lats := make([]time.Duration, 0, gridBatchReps)
		for i := 0; i < gridBatchReps; i++ {
			t0 := time.Now()
			proj, err := blk.Project(cmp)
			if err != nil {
				return nil, err
			}
			proj.SetGridMode(mode)
			proj.SkylineRange(0, proj.N())
			lats = append(lats, time.Since(t0))
		}
		return lats, nil
	}
	denseLats, err := measure(flat.GridOff)
	if err != nil {
		return err
	}
	gridLats, err := measure(flat.GridOn)
	if err != nil {
		return err
	}
	for _, m := range []struct {
		label string
		lats  []time.Duration
	}{{"dense", denseLats}, {"grid", gridLats}} {
		report.Add(export.Result{
			Name:       fmt.Sprintf("grid/SFS-D/N=%d/%s/%s", n, kind, m.label),
			Kernel:     "flat",
			N:          n,
			Iterations: len(m.lats),
			NsPerOp:    meanNs(m.lats),
			P50NsPerOp: percentileNs(m.lats, 0.5),
			P95NsPerOp: percentileNs(m.lats, 0.95),
		})
		fmt.Printf("grid %-6s p50 %12v  p95 %12v\n", m.label+":",
			time.Duration(percentileNs(m.lats, 0.5)), time.Duration(percentileNs(m.lats, 0.95)))
	}
	speedup := percentileNs(denseLats, 0.5) / percentileNs(gridLats, 0.5)
	report.Derive(fmt.Sprintf("grid/speedup-dense-vs-grid-p50/N=%d", n), speedup)
	st := flat.ReadGridStats()
	report.Derive(fmt.Sprintf("grid/rows-pruned/N=%d", n), float64(st.RowsPruned))
	fmt.Printf("grid p50 speedup vs dense: %.2fx (acceptance: >= 1.5x; %d rows pruned, %d cells dominated)\n",
		speedup, st.RowsPruned, st.CellsDominated)
	return nil
}

// batchPrefs builds B preferences that agree on the most-preferred value of
// every nominal dimension but refine differently below it — the shared-prefix
// shape /v1/batch sees when user populations share a taste but diverge in the
// details. All B are canonically distinct with overwhelming probability.
func batchPrefs(schema *data.Schema, bsize int, rng *rand.Rand) ([]*order.Preference, error) {
	cards := schema.Cardinalities()
	perms := make([][]order.Value, len(cards))
	for d, card := range cards {
		perm := make([]order.Value, card)
		for i, v := range rng.Perm(card) {
			perm[i] = order.Value(v)
		}
		perms[d] = perm
	}
	prefs := make([]*order.Preference, bsize)
	for k := range prefs {
		dims := make([]*order.Implicit, len(cards))
		for d, card := range cards {
			tail := slices.Clone(perms[d][1:])
			rng.Shuffle(len(tail), func(i, j int) { tail[i], tail[j] = tail[j], tail[i] })
			depth := 1 + rng.Intn(min(3, card-1)+1)
			vals := append([]order.Value{perms[d][0]}, tail[:depth-1]...)
			ip, err := order.NewImplicit(card, vals...)
			if err != nil {
				return nil, err
			}
			dims[d] = ip
		}
		pref, err := order.NewPreference(dims...)
		if err != nil {
			return nil, err
		}
		prefs[k] = pref
	}
	return prefs, nil
}

// runBatch times B preferences answered by a per-preference loop vs one
// SkylineBatch pass, verifying the answers agree first.
func runBatch(report *export.Report, ds *data.Dataset, n, bsize int, seed int64) error {
	store := flat.NewStore(ds, 0)
	snap := store.Snapshot()
	rng := rand.New(rand.NewSource(seed))
	prefs, err := batchPrefs(ds.Schema(), bsize, rng)
	if err != nil {
		return err
	}
	//lint:background offline benchmark driver; the process is the cancellation scope
	ctx := context.Background()

	loop := func() ([][]data.PointID, error) {
		out := make([][]data.PointID, len(prefs))
		for k, p := range prefs {
			cmp, err := dominance.NewComparator(ds.Schema(), p)
			if err != nil {
				return nil, err
			}
			proj, err := snap.Project(cmp)
			if err != nil {
				return nil, err
			}
			out[k] = proj.IDs(proj.SkylineRange(0, proj.N()))
		}
		return out, nil
	}
	want, err := loop()
	if err != nil {
		return err
	}
	got, err := snap.SkylineBatch(ctx, prefs, flat.GridAuto)
	if err != nil {
		return err
	}
	for k := range want {
		if !reflect.DeepEqual(want[k], got[k]) {
			return fmt.Errorf("batch member %d disagrees with the loop: %d vs %d ids", k, len(got[k]), len(want[k]))
		}
	}

	loopLats := make([]time.Duration, 0, gridBatchReps)
	for i := 0; i < gridBatchReps; i++ {
		t0 := time.Now()
		if _, err := loop(); err != nil {
			return err
		}
		loopLats = append(loopLats, time.Since(t0))
	}
	vecLats := make([]time.Duration, 0, gridBatchReps)
	for i := 0; i < gridBatchReps; i++ {
		t0 := time.Now()
		if _, err := snap.SkylineBatch(ctx, prefs, flat.GridAuto); err != nil {
			return err
		}
		vecLats = append(vecLats, time.Since(t0))
	}
	for _, m := range []struct {
		label string
		lats  []time.Duration
	}{{"loop", loopLats}, {"vectorized", vecLats}} {
		report.Add(export.Result{
			Name:       fmt.Sprintf("batch/N=%d/B=%d/%s", n, bsize, m.label),
			Kernel:     "flat",
			N:          n,
			Iterations: len(m.lats),
			NsPerOp:    meanNs(m.lats),
			P50NsPerOp: percentileNs(m.lats, 0.5),
			P95NsPerOp: percentileNs(m.lats, 0.95),
		})
		fmt.Printf("batch %-11s p50 %12v  p95 %12v\n", m.label+":",
			time.Duration(percentileNs(m.lats, 0.5)), time.Duration(percentileNs(m.lats, 0.95)))
	}
	speedup := percentileNs(loopLats, 0.5) / percentileNs(vecLats, 0.5)
	report.Derive(fmt.Sprintf("batch/speedup-loop-vs-vectorized/B=%d/N=%d", bsize, n), speedup)
	fmt.Printf("batch p50 speedup vs per-preference loop: %.2fx (acceptance: >= 3x at B=64)\n", speedup)
	return nil
}
