package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"prefsky/internal/bench/export"
	"prefsky/internal/data"
	"prefsky/internal/dominance"
	"prefsky/internal/durable"
	"prefsky/internal/flat"
	"prefsky/internal/gen"
	"prefsky/internal/order"
)

// The durability scenario prices the WAL: the PR-4 mixed 95/5 read/write
// workload runs against the same store three ways — memory-only (no
// journal), group-commit WAL (background fsync interval), and fsync=always
// (sync inside every mutation's critical section) — and reports query
// latency percentiles plus the mutation cost each policy adds. A fourth
// measurement times crash recovery: a WAL-only history (no checkpoint past
// the seed) is replayed from disk and reported as rows/second.
//
// Acceptance (ISSUE 6): group-commit p50 within 1.3x of memory-only.

// durableScenario runs the mixed workload against one store configuration.
func durableScenario(ds *data.Dataset, pref *order.Preference, store *flat.Store, workers, ops int, mutFrac float64) mixedMeasure {
	schema := ds.Schema()
	//lint:background offline benchmark driver; the process is the cancellation scope
	ctx := context.Background()
	query := func(int) {
		cmp, err := dominance.NewComparator(schema, pref)
		if err != nil {
			panic(err)
		}
		proj, err := store.Snapshot().Project(cmp)
		if err != nil {
			panic(err)
		}
		if _, err := proj.SkylineRangeCtx(ctx, 0, proj.N()); err != nil {
			panic(err)
		}
	}
	mut := randomMutation(schema.NumDims(), schema.NomDims(), schema.Cardinalities()[0],
		store.Insert, store.Delete)
	return mixedRun(workers, ops, mutFrac, query, mut)
}

// runDurability executes the WAL-cost comparison and the recovery-replay
// measurement, recording both in the report.
func runDurability(report *export.Report, ds *data.Dataset, pref *order.Preference, n, workers, ops int, mutFrac float64, replayRows int) error {
	stateRoot, err := os.MkdirTemp("", "kernelbench-durable-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(stateRoot)

	// Scenario 1: memory-only baseline (the PR-4 snapshot scenario).
	memStore := flat.NewStore(ds, 0)
	mem := durableScenario(ds, pref, memStore, workers, ops, mutFrac)
	addMixed(report, fmt.Sprintf("durability/N=%d/memory", n), "flat", n, &mem)

	// Scenario 2: group-commit WAL (the -fsync interval default).
	groupDB, err := durable.Open(ds, durable.Config{Dir: stateRoot + "/group", Fsync: durable.FsyncGroup})
	if err != nil {
		return err
	}
	group := durableScenario(ds, pref, groupDB.Store(), workers, ops, mutFrac)
	addMixed(report, fmt.Sprintf("durability/N=%d/wal-group", n), "flat", n, &group)
	groupStats := groupDB.Stats()
	if err := groupDB.Close(); err != nil {
		return err
	}

	// Scenario 3: fsync=always — every mutation syncs before it publishes.
	alwaysDB, err := durable.Open(ds, durable.Config{Dir: stateRoot + "/always", Fsync: durable.FsyncAlways})
	if err != nil {
		return err
	}
	always := durableScenario(ds, pref, alwaysDB.Store(), workers, ops, mutFrac)
	addMixed(report, fmt.Sprintf("durability/N=%d/wal-always", n), "flat", n, &always)
	if err := alwaysDB.Close(); err != nil {
		return err
	}

	report.Derive(fmt.Sprintf("durability/p50-ratio-group-vs-memory/N=%d", n),
		ratio(group.percentile(0.5), mem.percentile(0.5)))
	report.Derive(fmt.Sprintf("durability/p50-ratio-always-vs-memory/N=%d", n),
		ratio(always.percentile(0.5), mem.percentile(0.5)))
	report.Derive(fmt.Sprintf("durability/p95-ratio-group-vs-memory/N=%d", n),
		ratio(group.percentile(0.95), mem.percentile(0.95)))
	report.Derive("durability/wal-bytes-group", float64(groupStats.WALBytes))
	report.Derive("durability/wal-syncs-group", float64(groupStats.WALSyncs))

	// Recovery replay: a seed-only checkpoint plus replayRows WAL rows, timed
	// through a cold Open. FsyncOff keeps the setup fast; the replay itself
	// reads whatever reached the file either way.
	replaySeed := gen.MustDataset(gen.Config{
		N: 1, NumDims: ds.Schema().NumDims(), NomDims: ds.Schema().NomDims(),
		Cardinality: ds.Schema().Cardinalities()[0], Theta: 1, Kind: gen.Independent, Seed: 7,
	})
	replayDir := stateRoot + "/replay"
	seedDB, err := durable.Open(replaySeed, durable.Config{Dir: replayDir, Fsync: durable.FsyncOff, CompactThreshold: -1})
	if err != nil {
		return err
	}
	const batch = 1024
	schema := replaySeed.Schema()
	for done := 0; done < replayRows; done += batch {
		k := min(batch, replayRows-done)
		nums := make([][]float64, k)
		noms := make([][]order.Value, k)
		for i := 0; i < k; i++ {
			nums[i] = make([]float64, schema.NumDims())
			for d := range nums[i] {
				nums[i][d] = float64(done+i) / float64(replayRows)
			}
			noms[i] = make([]order.Value, schema.NomDims())
			for d, card := range schema.Cardinalities() {
				noms[i][d] = order.Value((done + i) % card)
			}
		}
		if _, err := seedDB.Store().InsertBatch(nums, noms); err != nil {
			return err
		}
	}
	// Crash-abandon the writer, but flush the log so the replay reads a
	// complete history on every filesystem.
	if err := seedDB.Sync(); err != nil {
		return err
	}

	t0 := time.Now()
	recDB, err := durable.Open(replaySeed, durable.Config{Dir: replayDir, Fsync: durable.FsyncOff, CompactThreshold: -1})
	if err != nil {
		return err
	}
	replayWall := time.Since(t0)
	rec := recDB.Recovery()
	if rec.RowsReplayed < replayRows {
		return fmt.Errorf("replay lost rows: %d of %d", rec.RowsReplayed, replayRows)
	}
	rowsPerSec := float64(rec.RowsReplayed) / replayWall.Seconds()
	report.Derive("durability/recovery-rows-per-sec", rowsPerSec)
	report.Derive("durability/recovery-wall-ms", float64(replayWall.Milliseconds()))
	if err := recDB.Close(); err != nil {
		return err
	}

	fmt.Printf("memory:     p50 %v  p95 %v  (%.0f ops/s, %d mutations)\n", mem.percentile(0.5), mem.percentile(0.95), mem.opsPerSec(), mem.mutations)
	fmt.Printf("wal-group:  p50 %v  p95 %v  (%.0f ops/s, %d mutations)\n", group.percentile(0.5), group.percentile(0.95), group.opsPerSec(), group.mutations)
	fmt.Printf("wal-always: p50 %v  p95 %v  (%.0f ops/s, %d mutations)\n", always.percentile(0.5), always.percentile(0.95), always.opsPerSec(), always.mutations)
	fmt.Printf("group-commit p50 vs memory-only: %.2fx (acceptance: <= 1.3x)\n",
		ratio(group.percentile(0.5), mem.percentile(0.5)))
	fmt.Printf("recovery replay: %d rows in %v (%.0f rows/s)\n", rec.RowsReplayed, replayWall, rowsPerSec)
	return nil
}
