package main

import (
	"context"
	"fmt"
	"math/rand"
	"slices"
	"time"

	"prefsky/internal/bench/export"
	"prefsky/internal/data"
	"prefsky/internal/order"
	"prefsky/internal/service"
	"prefsky/internal/zipf"
)

// The semantic scenario measures what the preference-lattice result cache
// buys on a Zipfian refinement workload: users share popular preference
// prefixes and refine them step by step (the workload skew Wong et al.
// observe on nominal attributes), so a refined query usually finds a coarser
// ancestor's skyline cached at the same store version. By Theorem 1 that
// ancestor bounds the refined skyline, and the flat kernel scans a few
// hundred cached candidate rows instead of the full dataset.
//
// Queries are classified by the service's reported outcome — engine (cold),
// semantic (lattice hit) and exact (cache hit) — and per-class latency
// percentiles are reported. The acceptance figure is
// semantic/speedup-cold-vs-semantic-p50 (target >= 5x at N=100k).

// semanticChain is one user population's refinement chain: chain[l] lists the
// first l+1 values of a fixed random permutation on every nominal dimension,
// so every later level strictly refines every earlier one.
func semanticChain(schema *data.Schema, depth int, rng *rand.Rand) ([]*order.Preference, error) {
	perms := make([][]order.Value, schema.NomDims())
	for d, card := range schema.Cardinalities() {
		perm := make([]order.Value, card)
		for i, v := range rng.Perm(card) {
			perm[i] = order.Value(v)
		}
		perms[d] = perm
		if depth > card {
			depth = card
		}
	}
	chain := make([]*order.Preference, 0, depth)
	for l := 1; l <= depth; l++ {
		dims := make([]*order.Implicit, schema.NomDims())
		for d := range dims {
			ip, err := order.NewImplicit(schema.Nominal[d].Cardinality(), perms[d][:l]...)
			if err != nil {
				return nil, err
			}
			dims[d] = ip
		}
		pref, err := order.NewPreference(dims...)
		if err != nil {
			return nil, err
		}
		chain = append(chain, pref)
	}
	return chain, nil
}

// runSemantic drives a Zipfian refinement workload through the service and
// records per-outcome latency percentiles.
func runSemantic(report *export.Report, ds *data.Dataset, n, chains, depth, queries int, seed int64) error {
	svc := service.New(service.Options{
		CacheCapacity: 1 << 16,
		// The workload's coarsest preferences can have skylines in the low
		// thousands at N=100k; let the lattice serve them all so the
		// measurement covers the whole refinement spectrum.
		SemanticCandidateLimit: 1 << 17,
	})
	if err := svc.AddDataset("bench", ds, service.EngineConfig{Kind: "sfsd"}); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	universe := make([][]*order.Preference, chains)
	for c := range universe {
		chain, err := semanticChain(ds.Schema(), depth, rng)
		if err != nil {
			return err
		}
		universe[c] = chain
	}
	dist, err := zipf.New(chains, 1)
	if err != nil {
		return err
	}

	//lint:background offline benchmark driver; the process is the cancellation scope
	ctx := context.Background()
	lats := map[service.Outcome][]time.Duration{}
	for q := 0; q < queries; q++ {
		chain := universe[dist.Sample(rng)]
		// Users mostly walk forward through their chain: refined levels are
		// queried more often than their (already cached) ancestors.
		pref := chain[rng.Intn(len(chain))]
		t0 := time.Now()
		_, outcome, err := svc.Query(ctx, "bench", pref)
		if err != nil {
			return fmt.Errorf("semantic workload query %d: %w", q, err)
		}
		lats[outcome] = append(lats[outcome], time.Since(t0))
	}

	name := map[service.Outcome]string{
		service.OutcomeEngine:   "cold",
		service.OutcomeSemantic: "semantic",
		service.OutcomeExact:    "exact",
	}
	p := func(ls []time.Duration, q float64) time.Duration {
		if len(ls) == 0 {
			return 0
		}
		s := slices.Clone(ls)
		slices.Sort(s)
		return s[int(q*float64(len(s)-1))]
	}
	for _, out := range []service.Outcome{service.OutcomeEngine, service.OutcomeSemantic, service.OutcomeExact} {
		ls := lats[out]
		mean := 0.0
		for _, l := range ls {
			mean += float64(l)
		}
		if len(ls) > 0 {
			mean /= float64(len(ls))
		}
		report.Add(export.Result{
			Name:       fmt.Sprintf("semantic/N=%d/%s", n, name[out]),
			Kernel:     "flat",
			N:          n,
			Iterations: len(ls),
			NsPerOp:    mean,
			P50NsPerOp: float64(p(ls, 0.5)),
			P95NsPerOp: float64(p(ls, 0.95)),
		})
		fmt.Printf("%-9s %6d queries  p50 %12v  p95 %12v\n", name[out]+":", len(ls), p(ls, 0.5), p(ls, 0.95))
	}

	coldP50, semP50 := p(lats[service.OutcomeEngine], 0.5), p(lats[service.OutcomeSemantic], 0.5)
	if semP50 > 0 {
		speedup := float64(coldP50) / float64(semP50)
		report.Derive(fmt.Sprintf("semantic/speedup-cold-vs-semantic-p50/N=%d", n), speedup)
		fmt.Printf("semantic-hit p50 speedup vs cold: %.1fx (acceptance: >= 5x)\n", speedup)
	}
	st := svc.Stats()
	report.Derive(fmt.Sprintf("semantic/hits/N=%d", n), float64(st.Cache.SemanticHits))
	report.Derive(fmt.Sprintf("semantic/exact-hits/N=%d", n), float64(st.Cache.Hits))
	report.Derive(fmt.Sprintf("semantic/misses/N=%d", n), float64(st.Cache.Misses))
	fmt.Printf("cache: %d exact hits, %d semantic hits, %d misses\n",
		st.Cache.Hits, st.Cache.SemanticHits, st.Cache.Misses)
	return nil
}
