package main

import (
	"context"
	"fmt"
	"net/http/httptest"
	"reflect"
	"runtime"
	"time"

	"prefsky/internal/bench/export"
	"prefsky/internal/cluster"
	"prefsky/internal/data"
	"prefsky/internal/dominance"
	"prefsky/internal/gen"
	"prefsky/internal/order"
	"prefsky/internal/service"
	"prefsky/internal/skyline"
)

// The cluster scenario measures the scatter-gather serving tier against a
// single node on the same dataset: cold-query p50 at 1 / 2 / 4 local shards
// (every cache disabled, so each query is a full partitioned scan + network
// merge) and coordinator cache-hit p50 (which must stay close to a single
// node's hit — the hit path never touches the network).
//
// Two cold figures are reported per shard count. "serialized" is the
// measured wall time in this process: the benchmark hosts every shard
// in-process, so on a single-core container the S shard scans run back to
// back. "concurrent" is the same queries' critical path — max per-shard
// fetch time + serial merge + coordinator overhead, from
// cluster.QueryTiming — which is the wall time of the deployed shape, where
// the S shards are separate processes scheduled in parallel. The acceptance
// figure is the concurrent one; both are in the JSON so the serialized
// number keeps it honest.
//
// Acceptance (ISSUE PR 9): cold p50 at 4 shards >= 2x single-node;
// coordinator hit p50 <= 2x single-node hit p50.

// coldReps/hitReps feed each percentile; hits are sub-microsecond so they
// need a much larger sample to stabilize p50.
const (
	coldReps = 15
	hitReps  = 501
)

// benchPref builds the order-2-per-nominal-dimension preference the kernel
// scenario uses.
func benchPref(ds *data.Dataset, card int) (*order.Preference, error) {
	pref := ds.Schema().EmptyPreference()
	var err error
	for d := 0; d < ds.Schema().NomDims(); d++ {
		ip := pref.Dim(d)
		for v := 0; v < 2 && v < card; v++ {
			if ip, err = ip.Extend(order.Value(v)); err != nil {
				return nil, err
			}
		}
		if pref, err = pref.WithDim(d, ip); err != nil {
			return nil, err
		}
	}
	return pref, nil
}

// coldServiceOptions disables every cache so repeated queries measure the
// full scan path.
func coldServiceOptions() service.Options {
	return service.Options{CacheCapacity: -1, SemanticCandidateLimit: -1}
}

// bootBenchCluster starts s in-process shards (cache-disabled services
// behind real HTTP servers) and a coordinator over them.
func bootBenchCluster(ds *data.Dataset, s int, coordCache int) (*cluster.Coordinator, func(), error) {
	servers := make([]*httptest.Server, s)
	specs := make([]cluster.ShardSpec, s)
	for i := range servers {
		h := cluster.NewShardHandler(service.New(coldServiceOptions()), service.EngineConfig{Kind: "sfsd"})
		servers[i] = httptest.NewServer(h)
		specs[i] = cluster.ShardSpec{URLs: []string{servers[i].URL}}
	}
	stop := func() {
		for _, srv := range servers {
			srv.Close()
		}
	}
	co, err := cluster.New(specs, cluster.Options{
		ProbeInterval:          -1,
		CacheCapacity:          coordCache,
		SemanticCandidateLimit: -1,
		// Every shard shares this process's core, so a concurrent scatter
		// would inflate each per-shard timing to the total wall time;
		// serialized, QueryTiming carries true isolated service times for
		// the concurrent-shape projection.
		SerializeScatter: true,
	})
	if err != nil {
		stop()
		return nil, nil, err
	}
	//lint:background offline benchmark driver; the process is the cancellation scope
	if err := co.AddDataset(context.Background(), "bench", ds); err != nil {
		co.Close()
		stop()
		return nil, nil, err
	}
	return co, func() { co.Close(); stop() }, nil
}

// runCluster measures single-node vs 1/2/4-shard scatter-gather for both
// numeric correlation shapes.
func runCluster(report *export.Report, n, numDims, nomDims, card int, seed int64) error {
	//lint:background offline benchmark driver; the process is the cancellation scope
	ctx := context.Background()
	for _, kind := range []gen.Kind{gen.Independent, gen.AntiCorrelated} {
		ds, err := gen.Dataset(gen.Config{
			N: n, NumDims: numDims, NomDims: nomDims, Cardinality: card,
			Theta: 1, Kind: kind, Seed: seed,
		})
		if err != nil {
			return err
		}
		pref, err := benchPref(ds, card)
		if err != nil {
			return err
		}
		cmp, err := dominance.NewComparator(ds.Schema(), pref.Canonical())
		if err != nil {
			return err
		}
		truth := skyline.SFS(ds.Points(), cmp)

		// Single-node baselines: cold p50 through the cache-disabled service,
		// hit p50 through a cache-enabled one.
		coldSvc := service.New(coldServiceOptions())
		if err := coldSvc.AddDataset("bench", ds, service.EngineConfig{Kind: "sfsd"}); err != nil {
			return err
		}
		singleCold, _, err := measureQueries(coldReps, func() ([]data.PointID, *cluster.QueryTiming, error) {
			ids, _, err := coldSvc.Query(ctx, "bench", pref)
			return ids, nil, err
		}, truth)
		if err != nil {
			return fmt.Errorf("single-node cold: %w", err)
		}
		hitSvc := service.New(service.Options{CacheCapacity: 1024})
		if err := hitSvc.AddDataset("bench", ds, service.EngineConfig{Kind: "sfsd"}); err != nil {
			return err
		}
		if _, _, err := hitSvc.Query(ctx, "bench", pref); err != nil {
			return err
		}
		singleHit, _, err := measureQueries(hitReps, func() ([]data.PointID, *cluster.QueryTiming, error) {
			ids, _, err := hitSvc.Query(ctx, "bench", pref)
			return ids, nil, err
		}, truth)
		if err != nil {
			return fmt.Errorf("single-node hit: %w", err)
		}
		addClusterResult(report, n, kind, "single-node-cold", singleCold)
		addClusterResult(report, n, kind, "single-node-hit", singleHit)

		// Scatter-gather cold at 1, 2, 4 shards.
		concP50 := map[int]float64{}
		for _, s := range []int{1, 2, 4} {
			co, cleanup, err := bootBenchCluster(ds, s, -1)
			if err != nil {
				return err
			}
			wall, conc, err := measureQueries(coldReps, func() ([]data.PointID, *cluster.QueryTiming, error) {
				res, err := co.Query(ctx, "bench", pref, cluster.FailStrict)
				if err != nil {
					return nil, nil, err
				}
				return res.IDs, res.Timing, nil
			}, truth)
			cleanup()
			if err != nil {
				return fmt.Errorf("%d shards cold: %w", s, err)
			}
			concP50[s] = percentileNs(conc, 0.5)
			addClusterResult(report, n, kind, fmt.Sprintf("shards=%d-cold-serialized", s), wall)
			addClusterResult(report, n, kind, fmt.Sprintf("shards=%d-cold-concurrent", s), conc)
		}

		// Coordinator cache hit: warmed once, then served without network.
		co, cleanup, err := bootBenchCluster(ds, 4, 1024)
		if err != nil {
			return err
		}
		if _, err := co.Query(ctx, "bench", pref, cluster.FailStrict); err != nil {
			cleanup()
			return err
		}
		coordHit, _, err := measureQueries(hitReps, func() ([]data.PointID, *cluster.QueryTiming, error) {
			res, err := co.Query(ctx, "bench", pref, cluster.FailStrict)
			if err != nil {
				return nil, nil, err
			}
			if !res.Outcome.CacheHit() {
				return nil, nil, fmt.Errorf("coordinator hit path missed the cache")
			}
			return res.IDs, nil, nil
		}, truth)
		cleanup()
		if err != nil {
			return fmt.Errorf("coordinator hit: %w", err)
		}
		addClusterResult(report, n, kind, "coordinator-hit", coordHit)

		speedup := percentileNs(singleCold, 0.5) / concP50[4]
		hitRatio := percentileNs(coordHit, 0.5) / percentileNs(singleHit, 0.5)
		report.Derive(fmt.Sprintf("cluster/cold-speedup-4shards-vs-single-p50/N=%d/%s", n, kind), speedup)
		report.Derive(fmt.Sprintf("cluster/hit-p50-ratio-coordinator-vs-single/N=%d/%s", n, kind), hitRatio)
		fmt.Printf("%s: cold p50 single %v | concurrent S=1 %v | S=2 %v | S=4 %v  => 4-shard speedup %.2fx (acceptance >= 2x)\n",
			kind,
			time.Duration(percentileNs(singleCold, 0.5)), time.Duration(concP50[1]),
			time.Duration(concP50[2]), time.Duration(concP50[4]), speedup)
		fmt.Printf("%s: hit p50 single %v | coordinator %v => ratio %.2fx (acceptance <= 2x)\n",
			kind, time.Duration(percentileNs(singleHit, 0.5)), time.Duration(percentileNs(coordHit, 0.5)), hitRatio)
	}
	return nil
}

// measureQueries runs the query reps times, verifying every answer against
// the oracle before trusting its timing. It returns measured wall times and
// the concurrent-shape times: when the query reports a cluster.QueryTiming,
// the critical path max(shard)+merge+coordinator overhead replaces the
// serialized sum this single-core process actually ran; without timing the
// two are identical.
func measureQueries(reps int, q func() ([]data.PointID, *cluster.QueryTiming, error), want []data.PointID) (wall, concurrent []time.Duration, err error) {
	runtime.GC()
	wall = make([]time.Duration, 0, reps)
	concurrent = make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		ids, timing, err := q()
		d := time.Since(t0)
		if err != nil {
			return nil, nil, err
		}
		if !reflect.DeepEqual(ids, want) {
			return nil, nil, fmt.Errorf("result diverged from oracle: %d ids, want %d", len(ids), len(want))
		}
		wall = append(wall, d)
		concurrent = append(concurrent, concurrentShape(d, timing))
	}
	return wall, concurrent, nil
}

// concurrentShape projects one serialized in-process measurement onto the
// deployed shape, where the shards are separate processes: the scatter phase
// costs its slowest shard instead of the sum, and the merge plus whatever
// coordinator overhead the wall time carried beyond the scatter stay serial.
func concurrentShape(wall time.Duration, t *cluster.QueryTiming) time.Duration {
	if t == nil {
		return wall
	}
	var sum, max int64
	for _, ns := range t.ShardNs {
		sum += ns
		if ns > max {
			max = ns
		}
	}
	overhead := wall.Nanoseconds() - sum - t.MergeNs
	if overhead < 0 {
		overhead = 0
	}
	return time.Duration(max + t.MergeNs + overhead)
}

func addClusterResult(report *export.Report, n int, kind gen.Kind, label string, lats []time.Duration) {
	report.Add(export.Result{
		Name:       fmt.Sprintf("cluster/query/N=%d/%s/%s", n, kind, label),
		Kernel:     "flat",
		N:          n,
		Iterations: len(lats),
		NsPerOp:    meanNs(lats),
		P50NsPerOp: percentileNs(lats, 0.5),
		P95NsPerOp: percentileNs(lats, 0.95),
	})
}
