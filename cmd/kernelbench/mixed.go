package main

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"slices"
	"sync"
	"time"

	"prefsky/internal/bench/export"
	"prefsky/internal/data"
	"prefsky/internal/dominance"
	"prefsky/internal/flat"
	"prefsky/internal/order"
)

// The mixed read/write scenario measures what the versioned store buys under
// concurrent maintenance: W workers issue a 95%/5% query/mutation mix against
// the same dataset three ways —
//
//   - read-only: the flat snapshot path with no writers (the latency floor);
//   - snapshot: queries grab the store's current snapshot lock-free while
//     mutations publish new versions (this repository's architecture);
//   - rwmutex: the PR-3-era emulation — one immutable Block behind an
//     RWMutex, every mutation rebuilding the Block under the write lock,
//     every query holding the read lock.
//
// Query latency percentiles (not means) are reported, because writer stalls
// live in the tail.

// mixedMeasure is one scenario's outcome.
type mixedMeasure struct {
	lats      []time.Duration // per-query wall times
	wall      time.Duration
	queries   int
	mutations int
}

func (m *mixedMeasure) percentile(q float64) time.Duration {
	if len(m.lats) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), m.lats...)
	slices.Sort(s)
	i := int(q * float64(len(s)-1))
	return s[i]
}

func (m *mixedMeasure) opsPerSec() float64 {
	return float64(m.queries+m.mutations) / m.wall.Seconds()
}

// mixedRun drives workers through opsPerWorker operations each: a mutation
// with probability mutFrac, a timed query otherwise.
func mixedRun(workers, opsPerWorker int, mutFrac float64, query func(w int), mutate func(w, i int, rng *rand.Rand)) mixedMeasure {
	perWorker := make([][]time.Duration, workers)
	muts := make([]int, workers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for i := 0; i < opsPerWorker; i++ {
				if mutate != nil && rng.Float64() < mutFrac {
					mutate(w, i, rng)
					muts[w]++
					continue
				}
				t0 := time.Now()
				query(w)
				perWorker[w] = append(perWorker[w], time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
	out := mixedMeasure{wall: time.Since(start)}
	for w := range perWorker {
		out.lats = append(out.lats, perWorker[w]...)
		out.mutations += muts[w]
	}
	out.queries = len(out.lats)
	return out
}

// randomMutation returns a closure that alternates inserts of random points
// with deletes of that worker's own earlier inserts against any Insert/Delete
// pair.
func randomMutation(numDims, nomDims, card int,
	insert func(num []float64, nom []order.Value) (data.PointID, error),
	del func(id data.PointID) error) func(w, i int, rng *rand.Rand) {
	var mu sync.Mutex
	mine := make(map[int][]data.PointID)
	return func(w, i int, rng *rand.Rand) {
		mu.Lock()
		own := mine[w]
		mu.Unlock()
		if len(own) > 0 && rng.Intn(2) == 0 {
			id := own[len(own)-1]
			if err := del(id); err == nil {
				mu.Lock()
				mine[w] = own[:len(own)-1]
				mu.Unlock()
			}
			return
		}
		num := make([]float64, numDims)
		for d := range num {
			num[d] = rng.Float64()
		}
		nom := make([]order.Value, nomDims)
		for d := range nom {
			nom[d] = order.Value(rng.Intn(card))
		}
		if id, err := insert(num, nom); err == nil {
			mu.Lock()
			mine[w] = append(mine[w], id)
			mu.Unlock()
		}
	}
}

// runMixed executes the three scenarios and records them in the report.
func runMixed(report *export.Report, ds *data.Dataset, pref *order.Preference, n, workers, ops int, mutFrac float64) error {
	if p := runtime.GOMAXPROCS(0); p < 2 {
		// With one scheduler thread the workers never truly overlap, so
		// writers cannot stall readers in either era and the rwmutex-vs-
		// snapshot contrast cannot manifest. Record the degenerate condition
		// in the report so archived numbers are not misread.
		fmt.Printf("warning: GOMAXPROCS=%d — workers cannot overlap; the snapshot-vs-rwmutex contrast needs >= 2 CPUs\n", p)
		report.Derive("mixed/degenerate-single-cpu", 1)
	}
	schema := ds.Schema()
	numDims, nomDims := schema.NumDims(), schema.NomDims()
	card := schema.Cardinalities()[0]
	//lint:background offline benchmark driver; the process is the cancellation scope
	ctx := context.Background()

	snapQuery := func(store *flat.Store) func(int) {
		return func(int) {
			cmp, err := dominance.NewComparator(schema, pref)
			if err != nil {
				panic(err)
			}
			snap := store.Snapshot()
			proj, err := snap.Project(cmp)
			if err != nil {
				panic(err)
			}
			if _, err := proj.SkylineRangeCtx(ctx, 0, proj.N()); err != nil {
				panic(err)
			}
		}
	}

	// Scenario 1: read-only baseline on the snapshot path.
	baseStore := flat.NewStore(ds, 0)
	base := mixedRun(workers, ops, 0, snapQuery(baseStore), nil)
	addMixed(report, fmt.Sprintf("mixed/N=%d/read-only", n), "flat", n, &base)

	// Scenario 2: snapshot swap under a 95/5 mix.
	snapStore := flat.NewStore(ds, 0)
	snapMut := randomMutation(numDims, nomDims, card, snapStore.Insert, snapStore.Delete)
	snap := mixedRun(workers, ops, mutFrac, snapQuery(snapStore), snapMut)
	addMixed(report, fmt.Sprintf("mixed/N=%d/snapshot", n), "flat", n, &snap)

	// Scenario 3: the RWMutex era — an immutable Block rebuilt per mutation
	// under the write lock, queries under the read lock.
	var mu sync.RWMutex
	points := append([]data.Point(nil), ds.Points()...)
	blk := flat.NewBlock(ds)
	nextID := data.PointID(len(points))
	rwQuery := func(int) {
		cmp, err := dominance.NewComparator(schema, pref)
		if err != nil {
			panic(err)
		}
		mu.RLock()
		defer mu.RUnlock()
		proj, err := blk.Project(cmp)
		if err != nil {
			panic(err)
		}
		if _, err := proj.SkylineRangeCtx(ctx, 0, proj.N()); err != nil {
			panic(err)
		}
	}
	rwInsert := func(num []float64, nom []order.Value) (data.PointID, error) {
		mu.Lock()
		defer mu.Unlock()
		id := nextID
		nextID++
		points = append(points, data.Point{ID: id, Num: num, Nom: nom})
		b, err := flat.FromPoints(schema, points)
		if err != nil {
			return 0, err
		}
		blk = b
		return id, nil
	}
	rwDelete := func(id data.PointID) error {
		mu.Lock()
		defer mu.Unlock()
		for i := range points {
			if points[i].ID == id {
				points = append(points[:i], points[i+1:]...)
				break
			}
		}
		b, err := flat.FromPoints(schema, points)
		if err != nil {
			return err
		}
		blk = b
		return nil
	}
	rwMut := randomMutation(numDims, nomDims, card, rwInsert, rwDelete)
	rw := mixedRun(workers, ops, mutFrac, rwQuery, rwMut)
	addMixed(report, fmt.Sprintf("mixed/N=%d/rwmutex", n), "flat", n, &rw)

	report.Derive(fmt.Sprintf("mixed/p50-ratio-snapshot-vs-readonly/N=%d", n),
		ratio(snap.percentile(0.5), base.percentile(0.5)))
	report.Derive(fmt.Sprintf("mixed/p50-ratio-rwmutex-vs-readonly/N=%d", n),
		ratio(rw.percentile(0.5), base.percentile(0.5)))
	report.Derive(fmt.Sprintf("mixed/p95-ratio-snapshot-vs-readonly/N=%d", n),
		ratio(snap.percentile(0.95), base.percentile(0.95)))
	report.Derive(fmt.Sprintf("mixed/p95-ratio-rwmutex-vs-readonly/N=%d", n),
		ratio(rw.percentile(0.95), base.percentile(0.95)))
	report.Derive(fmt.Sprintf("mixed/throughput-snapshot-vs-rwmutex/N=%d", n),
		snap.opsPerSec()/rw.opsPerSec())

	fmt.Printf("read-only: p50 %v  p95 %v  (%.0f ops/s)\n", base.percentile(0.5), base.percentile(0.95), base.opsPerSec())
	fmt.Printf("snapshot:  p50 %v  p95 %v  (%.0f ops/s, %d mutations)\n", snap.percentile(0.5), snap.percentile(0.95), snap.opsPerSec(), snap.mutations)
	fmt.Printf("rwmutex:   p50 %v  p95 %v  (%.0f ops/s, %d mutations)\n", rw.percentile(0.5), rw.percentile(0.95), rw.opsPerSec(), rw.mutations)
	fmt.Printf("snapshot p50 vs read-only: %.2fx (acceptance: <= 1.2x)\n",
		ratio(snap.percentile(0.5), base.percentile(0.5)))
	return nil
}

func ratio(a, b time.Duration) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func addMixed(report *export.Report, name, kernel string, n int, m *mixedMeasure) {
	mean := 0.0
	for _, l := range m.lats {
		mean += float64(l)
	}
	if len(m.lats) > 0 {
		mean /= float64(len(m.lats))
	}
	report.Add(export.Result{
		Name:       name,
		Kernel:     kernel,
		N:          n,
		Iterations: m.queries,
		NsPerOp:    mean,
		P50NsPerOp: float64(m.percentile(0.5)),
		P95NsPerOp: float64(m.percentile(0.95)),
	})
}
