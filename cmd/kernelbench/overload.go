package main

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"prefsky/internal/bench/export"
	"prefsky/internal/data"
	"prefsky/internal/gen"
	"prefsky/internal/order"
	"prefsky/internal/service"
)

// The overload scenario measures what the bounded admission queue buys when
// the worker pool is swamped: a burst of burstFactor × workers concurrent
// cold queries keeps every worker busy and the queue full, so the excess is
// shed immediately with ErrOverloaded (503 + Retry-After at the HTTP layer)
// instead of parking without limit. Two properties are measured:
//
//   - shed latency: a rejected query must cost near nothing (acceptance:
//     p50 <= 5ms, in practice microseconds — the shed path never blocks);
//   - isolation: cache hits are served without a worker slot, so the hot
//     path's p50 under the burst must stay within 2x of its idle p50.

// runOverload drives the burst and records idle-vs-overload percentiles.
func runOverload(report *export.Report, ds *data.Dataset, n, workers, burstFactor, hitSamples int, seed int64) error {
	svc := service.New(service.Options{
		CacheCapacity: 1 << 16,
		Workers:       workers,
		// A one-worker's-worth queue: the burst saturates it instantly and
		// everything beyond is shed.
		MaxQueuedQueries: workers,
		// Cold queries must reach the engine, not the lattice.
		SemanticCandidateLimit: -1,
	})
	if err := svc.AddDataset("bench", ds, service.EngineConfig{Kind: "sfsd"}); err != nil {
		return err
	}
	//lint:background offline benchmark driver; the process is the cancellation scope
	ctx := context.Background()

	// A large universe of canonically distinct preferences: the burst's cold
	// queries must keep missing the cache to keep the pool saturated.
	raw, err := gen.Queries(ds.Schema().Cardinalities(), ds.Schema().EmptyPreference(),
		gen.QueryConfig{Order: 2, Count: 8192, Mode: gen.Uniform, Seed: seed})
	if err != nil {
		return err
	}
	seen := make(map[string]bool, len(raw))
	var cold []*order.Preference
	for _, q := range raw {
		k := q.Canonical().CacheKey()
		if !seen[k] {
			seen[k] = true
			cold = append(cold, q)
		}
	}
	if len(cold) < 2 {
		return fmt.Errorf("overload: only %d distinct preferences generated", len(cold))
	}
	warm, cold := cold[0], cold[1:]
	if _, _, err := svc.Query(ctx, "bench", warm); err != nil {
		return fmt.Errorf("overload warmup: %w", err)
	}

	// measureHits samples the warm preference's cache-hit latency, paced so
	// the samples spread across a real time window instead of one tight loop.
	measureHits := func(k int) ([]time.Duration, error) {
		lats := make([]time.Duration, 0, k)
		for i := 0; i < k; i++ {
			t0 := time.Now()
			_, outcome, err := svc.Query(ctx, "bench", warm)
			if err != nil {
				return nil, fmt.Errorf("cache-hit query: %w", err)
			}
			if !outcome.CacheHit() {
				return nil, fmt.Errorf("warm query served by %v, want a cache hit", outcome)
			}
			lats = append(lats, time.Since(t0))
			time.Sleep(250 * time.Microsecond)
		}
		return lats, nil
	}

	idle, err := measureHits(hitSamples)
	if err != nil {
		return err
	}

	// The burst: burstFactor × workers goroutines looping cold queries.
	// Completed queries land in the cache, so every goroutine walks its own
	// slice of the universe and never repeats a preference.
	stop := make(chan struct{})
	var (
		wg        sync.WaitGroup
		shedMu    sync.Mutex
		shedLats  []time.Duration
		engineOK  atomic.Uint64
		exhausted atomic.Uint64
	)
	clients := burstFactor * workers
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; ; {
				select {
				case <-stop:
					return
				default:
				}
				if i >= len(cold) {
					exhausted.Add(1)
					return
				}
				t0 := time.Now()
				_, _, err := svc.Query(ctx, "bench", cold[i])
				switch {
				case errors.Is(err, service.ErrOverloaded):
					d := time.Since(t0)
					shedMu.Lock()
					shedLats = append(shedLats, d)
					shedMu.Unlock()
					// A real client backs off on 503 and retries the same
					// query, so the universe drains at engine throughput, not
					// at shed rate.
					time.Sleep(time.Millisecond)
				case err != nil:
					return
				default:
					engineOK.Add(1)
					i += clients
				}
			}
		}(c)
	}
	// Saturation gate: measure the hot path only once shedding has started.
	for deadline := time.Now().Add(5 * time.Second); ; {
		if svc.Stats().Shed > 0 {
			break
		}
		if time.Now().After(deadline) {
			close(stop)
			wg.Wait()
			return fmt.Errorf("overload: burst never saturated the pool (workers=%d clients=%d)", workers, clients)
		}
		time.Sleep(time.Millisecond)
	}
	under, err := measureHits(hitSamples)
	close(stop)
	wg.Wait()
	if err != nil {
		return err
	}
	if exhausted.Load() > 0 {
		fmt.Printf("note: %d burst clients ran out of distinct preferences before the measurement window closed\n", exhausted.Load())
	}

	p := func(ls []time.Duration, q float64) time.Duration {
		if len(ls) == 0 {
			return 0
		}
		s := slices.Clone(ls)
		slices.Sort(s)
		return s[int(q*float64(len(s)-1))]
	}
	add := func(name string, ls []time.Duration) {
		mean := 0.0
		for _, l := range ls {
			mean += float64(l)
		}
		if len(ls) > 0 {
			mean /= float64(len(ls))
		}
		report.Add(export.Result{
			Name:       fmt.Sprintf("overload/N=%d/%s", n, name),
			Kernel:     "flat",
			N:          n,
			Iterations: len(ls),
			NsPerOp:    mean,
			P50NsPerOp: float64(p(ls, 0.5)),
			P95NsPerOp: float64(p(ls, 0.95)),
		})
		fmt.Printf("%-22s %7d samples  p50 %12v  p95 %12v\n", name+":", len(ls), p(ls, 0.5), p(ls, 0.95))
	}
	add("cache-hit-idle", idle)
	add("cache-hit-under-burst", under)
	add("shed", shedLats)

	st := svc.Stats()
	report.Derive(fmt.Sprintf("overload/sheds/N=%d", n), float64(st.Shed))
	report.Derive(fmt.Sprintf("overload/engine-queries/N=%d", n), float64(engineOK.Load()))
	if idleP50 := p(idle, 0.5); idleP50 > 0 {
		ratio := float64(p(under, 0.5)) / float64(idleP50)
		report.Derive(fmt.Sprintf("overload/hit-p50-ratio-burst-vs-idle/N=%d", n), ratio)
		fmt.Printf("cache-hit p50 under burst vs idle: %.2fx (acceptance: <= 2x)\n", ratio)
	}
	shedMS := float64(p(shedLats, 0.5)) / float64(time.Millisecond)
	report.Derive(fmt.Sprintf("overload/shed-p50-ms/N=%d", n), shedMS)
	fmt.Printf("shed p50: %.3fms over %d sheds (acceptance: <= 5ms)\n", shedMS, st.Shed)
	return nil
}
