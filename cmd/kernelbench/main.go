// Command kernelbench measures the columnar (flat) dominance kernel against
// the original pointer kernel on one synthetic dataset and emits the
// measurements as machine-readable JSON (internal/bench/export), the format
// CI archives as BENCH_pr*.json so the repository's performance trajectory
// has data points.
//
// Usage:
//
//	kernelbench -n 100000 -kind independent -out BENCH_pr3.json
//	kernelbench -n 100000 -mixed -out BENCH_pr4.json
//	kernelbench -n 100000 -semantic -out BENCH_pr5.json
//	kernelbench -n 100000 -durability -out BENCH_pr6.json
//	kernelbench -n 100000 -overload -out BENCH_pr8.json
//	kernelbench -n 400000 -cluster -out BENCH_pr9.json
//
// Both kernels answer the same preference over the same dataset; the tool
// verifies the skylines are identical before trusting the timings. The flat
// measurement includes the per-query rank projection (the block itself is
// built once, as the engines build it at load/registration time).
//
// -mixed switches to the concurrent read/write scenario: a 95%/5%
// query/mutation mix measured on the versioned snapshot store versus the
// RWMutex-era design (immutable block rebuilt under a write lock), against a
// read-only latency floor. See cmd/kernelbench/mixed.go.
//
// -semantic switches to the preference-lattice result-cache scenario: a
// Zipfian refinement workload through internal/service, with per-outcome
// (cold / semantic / exact) latency percentiles. See
// cmd/kernelbench/semantic.go.
//
// -durability reruns the mixed workload with the store journaled through
// internal/durable under each fsync policy, and times cold WAL replay. See
// cmd/kernelbench/durability.go.
//
// -overload swamps the service's worker pool with a cold-query burst and
// measures what the bounded admission queue buys: shed latency (a 503 must
// cost microseconds, not a parked goroutine) and cache-hit isolation (the
// hot path's p50 under the burst vs idle). See cmd/kernelbench/overload.go.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"reflect"
	"testing"

	"prefsky/internal/bench/export"
	"prefsky/internal/dominance"
	"prefsky/internal/flat"
	"prefsky/internal/gen"
	"prefsky/internal/order"
	"prefsky/internal/parallel"
	"prefsky/internal/skyline"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kernelbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("kernelbench", flag.ContinueOnError)
	var (
		n          = fs.Int("n", 100_000, "dataset size")
		numDims    = fs.Int("numdims", 2, "numeric dimensions")
		nomDims    = fs.Int("nomdims", 2, "nominal dimensions")
		card       = fs.Int("card", 10, "nominal cardinality")
		kindName   = fs.String("kind", "independent", "numeric correlation: independent, correlated or anti-correlated")
		seed       = fs.Int64("seed", 42, "dataset seed")
		out        = fs.String("out", "BENCH_pr3.json", "output JSON path (empty = stdout only)")
		parts      = fs.Int("partitions", 0, "also measure the partitioned flat engine with this block count (0 = skip)")
		mixed      = fs.Bool("mixed", false, "run the mixed read/write scenario (snapshot store vs RWMutex era) instead of the kernel comparison")
		workers    = fs.Int("mixed-workers", 4, "concurrent workers in the mixed scenario")
		ops        = fs.Int("mixed-ops", 200, "operations per worker in the mixed scenario")
		mutFrac    = fs.Float64("mixed-mutations", 0.05, "fraction of operations that are mutations in the mixed scenario")
		durability = fs.Bool("durability", false, "run the durability scenario (mixed workload with WAL policies + recovery replay) instead of the kernel comparison")
		replayRows = fs.Int("durability-replay-rows", 100_000, "WAL rows replayed in the durability scenario's recovery measurement")
		semantic   = fs.Bool("semantic", false, "run the semantic result-cache scenario (Zipfian refinement workload) instead of the kernel comparison")
		semCh      = fs.Int("semantic-chains", 40, "distinct refinement chains in the semantic scenario")
		semDepth   = fs.Int("semantic-depth", 3, "refinement levels per chain in the semantic scenario")
		semQ       = fs.Int("semantic-queries", 2000, "queries issued in the semantic scenario")
		overload   = fs.Bool("overload", false, "run the overload-shedding scenario (cache-hit latency under a shed burst vs idle) instead of the kernel comparison")
		ovWorkers  = fs.Int("overload-workers", 4, "worker-pool size in the overload scenario")
		ovBurst    = fs.Int("overload-burst", 10, "burst clients per worker in the overload scenario")
		ovHits     = fs.Int("overload-hits", 1500, "cache-hit latency samples per phase in the overload scenario")
		clusterSc  = fs.Bool("cluster", false, "run the cluster scenario (scatter-gather over 1/2/4 in-process shards vs single node) instead of the kernel comparison")
		grid       = fs.Bool("grid", false, "run the grid-pruning scenario (dense vs grid-pruned cold SFS-D) instead of the kernel comparison")
		batch      = fs.Bool("batch", false, "run the batch-vectorization scenario (per-preference loop vs one shared scan) instead of the kernel comparison")
		batchB     = fs.Int("batch-b", 64, "preferences per batch in the batch scenario")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *clusterSc {
		report := export.NewReport("cluster: scatter-gather skyline over sharded skylined vs single node")
		if err := runCluster(report, *n, *numDims, *nomDims, *card, *seed); err != nil {
			return err
		}
		if *out != "" {
			if err := export.WriteFile(*out, report); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *out)
		}
		return nil
	}
	kind, err := gen.ParseKind(*kindName)
	if err != nil {
		return err
	}
	ds, err := gen.Dataset(gen.Config{
		N: *n, NumDims: *numDims, NomDims: *nomDims, Cardinality: *card,
		Theta: 1, Kind: kind, Seed: *seed,
	})
	if err != nil {
		return err
	}
	// An order-2 preference on every nominal dimension: the shape §5 queries.
	pref := ds.Schema().EmptyPreference()
	for d := 0; d < ds.Schema().NomDims(); d++ {
		ip := pref.Dim(d)
		for v := 0; v < 2 && v < *card; v++ {
			if ip, err = ip.Extend(order.Value(v)); err != nil {
				return err
			}
		}
		if pref, err = pref.WithDim(d, ip); err != nil {
			return err
		}
	}
	cmp, err := dominance.NewComparator(ds.Schema(), pref)
	if err != nil {
		return err
	}

	if *grid || *batch {
		report := export.NewReport("grid pruning + batch vectorization over the rank-column layout")
		if *grid {
			if err := runGrid(report, ds, cmp, *n, kind); err != nil {
				return err
			}
		}
		if *batch {
			if err := runBatch(report, ds, *n, *batchB, *seed+2); err != nil {
				return err
			}
		}
		if *out != "" {
			if err := export.WriteFile(*out, report); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *out)
		}
		return nil
	}

	if *overload {
		report := export.NewReport("overload shedding: cache-hit latency under a shed burst vs idle")
		if err := runOverload(report, ds, *n, *ovWorkers, *ovBurst, *ovHits, *seed+3); err != nil {
			return err
		}
		if *out != "" {
			if err := export.WriteFile(*out, report); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *out)
		}
		return nil
	}

	if *semantic {
		report := export.NewReport("semantic cache: preference-lattice hits vs cold scans (Zipfian refinement workload)")
		if err := runSemantic(report, ds, *n, *semCh, *semDepth, *semQ, *seed+1); err != nil {
			return err
		}
		if *out != "" {
			if err := export.WriteFile(*out, report); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *out)
		}
		return nil
	}

	if *durability {
		report := export.NewReport("durability: mixed read/write under WAL fsync policies + recovery replay")
		if err := runDurability(report, ds, pref, *n, *workers, *ops, *mutFrac, *replayRows); err != nil {
			return err
		}
		if *out != "" {
			if err := export.WriteFile(*out, report); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *out)
		}
		return nil
	}

	if *mixed {
		report := export.NewReport("mixed read/write: snapshot store vs RWMutex era")
		if err := runMixed(report, ds, pref, *n, *workers, *ops, *mutFrac); err != nil {
			return err
		}
		if *out != "" {
			if err := export.WriteFile(*out, report); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *out)
		}
		return nil
	}

	blk := flat.NewBlock(ds)
	wantPointer := skyline.SFS(ds.Points(), cmp)
	gotFlat, err := skyline.SFSFlat(blk, cmp)
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(gotFlat, wantPointer) {
		return fmt.Errorf("kernels disagree: flat %d ids, pointer %d ids", len(gotFlat), len(wantPointer))
	}

	report := export.NewReport("kernel: flat vs pointer SFS")
	label := func(kernel string) string {
		return fmt.Sprintf("SFS-D/N=%d/%s/kernel=%s", *n, kind, kernel)
	}

	pointer := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			skyline.SFS(ds.Points(), cmp)
		}
	})
	report.Add(toResult(label("pointer"), "pointer", *n, pointer))

	flatRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := skyline.SFSFlat(blk, cmp); err != nil {
				b.Fatal(err)
			}
		}
	})
	report.Add(toResult(label("flat"), "flat", *n, flatRes))

	speedup := float64(pointer.NsPerOp()) / float64(flatRes.NsPerOp())
	report.Derive(fmt.Sprintf("speedup/N=%d", *n), speedup)
	fmt.Printf("pointer: %12d ns/op  %8d B/op  %6d allocs/op\n",
		pointer.NsPerOp(), pointer.AllocedBytesPerOp(), pointer.AllocsPerOp())
	fmt.Printf("flat:    %12d ns/op  %8d B/op  %6d allocs/op\n",
		flatRes.NsPerOp(), flatRes.AllocedBytesPerOp(), flatRes.AllocsPerOp())
	fmt.Printf("speedup: %.2fx (skyline %d points)\n", speedup, len(gotFlat))

	if *parts > 0 {
		eng, err := parallel.New(ds, *parts)
		if err != nil {
			return err
		}
		//lint:background offline benchmark driver; the process is the cancellation scope
		ctx := context.Background()
		par := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Skyline(ctx, pref); err != nil {
					b.Fatal(err)
				}
			}
		})
		report.Add(toResult(fmt.Sprintf("Parallel-SFS/N=%d/%s/P=%d/kernel=flat", *n, kind, *parts), "flat", *n, par))
		report.Derive(fmt.Sprintf("parallel-speedup/N=%d/P=%d", *n, *parts),
			float64(pointer.NsPerOp())/float64(par.NsPerOp()))
		fmt.Printf("parallel(P=%d): %9d ns/op (%.2fx vs pointer)\n",
			*parts, par.NsPerOp(), float64(pointer.NsPerOp())/float64(par.NsPerOp()))
	}

	if *out != "" {
		if err := export.WriteFile(*out, report); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	return nil
}

func toResult(name, kernel string, n int, r testing.BenchmarkResult) export.Result {
	return export.Result{
		Name:        name,
		Kernel:      kernel,
		N:           n,
		Iterations:  r.N,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}
