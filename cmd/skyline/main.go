// Command skyline answers implicit-preference skyline queries over a CSV
// dataset.
//
// Usage:
//
//	skyline -data packages.csv -schema schema.json \
//	        -pref "Hotel-group: T<M<*; Airline: G<*" \
//	        [-template "Hotel-group: T<*"] [-topk 10] [-partitions 8]
//	        [-algo ipo|sfsa|sfsd|hybrid|parallel-sfs|parallel-hybrid]
//
// The schema file is JSON: {"numeric":[{"name":"Price"},...],
// "nominal":[{"name":"Hotel-group","values":["T","H","M"]},...]}. The matching
// rows are written to stdout as CSV (with the original header).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"prefsky"
	"prefsky/internal/data"
	"prefsky/internal/ipotree"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "skyline:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("skyline", flag.ContinueOnError)
	var (
		dataPath   = fs.String("data", "", "CSV dataset path (required)")
		schemaPath = fs.String("schema", "", "JSON schema path (required)")
		prefSpec   = fs.String("pref", "", "implicit preference, e.g. \"Hotel-group: T<M<*\"")
		tmplSpec   = fs.String("template", "", "template preference shared by all users")
		algo       = fs.String("algo", "sfsd", "engine: ipo, sfsa, sfsd, hybrid, parallel-sfs or parallel-hybrid")
		topK       = fs.Int("topk", 0, "materialize only the K most frequent values (ipo/hybrid)")
		partitions = fs.Int("partitions", 0, "blocks per parallel-sfs/parallel-hybrid query (0 = GOMAXPROCS)")
		saveIndex  = fs.String("save-index", "", "build an IPO-tree index and save it to this path")
		loadIndex  = fs.String("index", "", "load a previously saved IPO-tree index (implies -algo ipo)")
		verbose    = fs.Bool("v", false, "print engine and timing details to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataPath == "" || *schemaPath == "" {
		return fmt.Errorf("-data and -schema are required")
	}

	schemaFile, err := os.Open(*schemaPath)
	if err != nil {
		return err
	}
	defer schemaFile.Close()
	schema, err := prefsky.ReadSchemaJSON(schemaFile)
	if err != nil {
		return err
	}
	dataFile, err := os.Open(*dataPath)
	if err != nil {
		return err
	}
	defer dataFile.Close()
	ds, err := prefsky.ReadCSV(dataFile, schema)
	if err != nil {
		return err
	}

	tmpl, err := prefsky.ParsePreference(schema, *tmplSpec)
	if err != nil {
		return fmt.Errorf("parsing template: %w", err)
	}
	pref, err := prefsky.ParsePreference(schema, *prefSpec)
	if err != nil {
		return fmt.Errorf("parsing preference: %w", err)
	}

	if *loadIndex != "" {
		*algo = "ipo"
	}
	var engine prefsky.Engine
	isIPO := false
	switch strings.ToLower(strings.TrimSpace(*algo)) {
	case "ipo", "ipotree", "ipo tree", "ipo-tree":
		isIPO = true
	}
	switch {
	case isIPO && (*saveIndex != "" || *loadIndex != ""):
		engine, err = ipoEngine(ds, tmpl, *topK, *saveIndex, *loadIndex)
	case *saveIndex != "":
		return fmt.Errorf("-save-index requires -algo ipo, got %q", *algo)
	default:
		engine, err = prefsky.NewEngineByName(*algo, ds, tmpl,
			prefsky.EngineOptions{Tree: prefsky.TreeOptions{TopK: *topK}, Partitions: *partitions})
	}
	if err != nil {
		return fmt.Errorf("building %s engine: %w", *algo, err)
	}

	//lint:background one-shot CLI query; the process lifetime is the cancellation scope
	ids, err := engine.Skyline(context.Background(), pref)
	if err != nil {
		return fmt.Errorf("query: %w", err)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "engine=%s points=%d skyline=%d storage=%dB\n",
			engine.Name(), ds.N(), len(ids), engine.SizeBytes())
	}
	points := make([]prefsky.Point, len(ids))
	for i, id := range ids {
		points[i] = ds.Point(id)
	}
	result, err := ds.WithPoints(points)
	if err != nil {
		return err
	}
	return data.WriteCSV(out, result)
}

// ipoEngine builds (or loads) the IPO-tree engine, optionally persisting the
// index so later invocations skip the preprocessing.
func ipoEngine(ds *prefsky.Dataset, tmpl *prefsky.Preference, topK int, savePath, loadPath string) (prefsky.Engine, error) {
	if loadPath != "" {
		f, err := os.Open(loadPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		tree, err := ipotree.Load(f)
		if err != nil {
			return nil, err
		}
		return treeEngine{tree}, nil
	}
	tree, err := ipotree.Build(ds, tmpl, ipotree.Options{TopK: topK})
	if err != nil {
		return nil, err
	}
	if savePath != "" {
		f, err := os.Create(savePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if err := tree.Save(f); err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "skyline: saved index to %s\n", savePath)
	}
	return treeEngine{tree}, nil
}

// treeEngine adapts a raw *ipotree.Tree to the Engine interface.
type treeEngine struct {
	tree *ipotree.Tree
}

func (t treeEngine) Name() string { return "IPO Tree" }
func (t treeEngine) Skyline(ctx context.Context, pref *prefsky.Preference) ([]prefsky.PointID, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return t.tree.Query(pref)
}
func (t treeEngine) SizeBytes() int { return t.tree.SizeBytes() }
