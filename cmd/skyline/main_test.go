package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testSchema = `{
  "numeric": [{"name": "Price"}, {"name": "Hotel-class", "higherIsBetter": true}],
  "nominal": [{"name": "Hotel-group", "values": ["T", "H", "M"]}]
}`

const testCSV = `Price,Hotel-class,Hotel-group
1600,4,T
2400,1,T
3000,5,H
3600,4,H
2400,2,M
3000,3,M
`

func writeFixture(t *testing.T) (dataPath, schemaPath string) {
	t.Helper()
	dir := t.TempDir()
	dataPath = filepath.Join(dir, "data.csv")
	schemaPath = filepath.Join(dir, "schema.json")
	if err := os.WriteFile(dataPath, []byte(testCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(schemaPath, []byte(testSchema), 0o644); err != nil {
		t.Fatal(err)
	}
	return dataPath, schemaPath
}

func TestRunAllEngines(t *testing.T) {
	dataPath, schemaPath := writeFixture(t)
	for _, algo := range []string{"ipo", "sfsa", "sfsd", "hybrid"} {
		var out bytes.Buffer
		err := run([]string{
			"-data", dataPath, "-schema", schemaPath,
			"-pref", "Hotel-group: T<M<*", "-algo", algo,
		}, &out)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		lines := strings.Split(strings.TrimSpace(out.String()), "\n")
		// Alice's skyline is {a, c}: header + 2 rows.
		if len(lines) != 3 {
			t.Errorf("%s: output has %d lines, want 3:\n%s", algo, len(lines), out.String())
		}
		if !strings.Contains(lines[1], "1600") || !strings.Contains(lines[2], "3000") {
			t.Errorf("%s: unexpected rows:\n%s", algo, out.String())
		}
	}
}

func TestRunIndexSaveLoad(t *testing.T) {
	dataPath, schemaPath := writeFixture(t)
	idxPath := filepath.Join(t.TempDir(), "tree.idx")
	var out bytes.Buffer
	if err := run([]string{
		"-data", dataPath, "-schema", schemaPath,
		"-pref", "Hotel-group: H<M<*", "-algo", "ipo", "-save-index", idxPath,
	}, &out); err != nil {
		t.Fatal(err)
	}
	first := out.String()
	out.Reset()
	if err := run([]string{
		"-data", dataPath, "-schema", schemaPath,
		"-pref", "Hotel-group: H<M<*", "-index", idxPath,
	}, &out); err != nil {
		t.Fatal(err)
	}
	if out.String() != first {
		t.Errorf("loaded index answered differently:\n%s\nvs\n%s", out.String(), first)
	}
}

func TestRunErrors(t *testing.T) {
	dataPath, schemaPath := writeFixture(t)
	cases := [][]string{
		{},                  // missing required flags
		{"-data", dataPath}, // missing schema
		{"-data", "/nope", "-schema", schemaPath}, // bad data path
		{"-data", dataPath, "-schema", schemaPath, "-algo", "bogus"},
		{"-data", dataPath, "-schema", schemaPath, "-pref", "Hotel-group: X<*"},
		{"-data", dataPath, "-schema", schemaPath, "-pref", "nonsense"},
		{"-data", dataPath, "-schema", schemaPath, "-index", "/nope"},
	}
	for i, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("case %d (%v): no error", i, args)
		}
	}
}

func TestRunTemplateValidation(t *testing.T) {
	dataPath, schemaPath := writeFixture(t)
	var out bytes.Buffer
	// Query conflicts with template → engines must reject.
	err := run([]string{
		"-data", dataPath, "-schema", schemaPath,
		"-template", "Hotel-group: T<*",
		"-pref", "Hotel-group: M<*", "-algo", "ipo",
	}, &out)
	if err == nil {
		t.Error("conflicting query accepted")
	}
	// A refining query works.
	out.Reset()
	if err := run([]string{
		"-data", dataPath, "-schema", schemaPath,
		"-template", "Hotel-group: T<*",
		"-pref", "Hotel-group: T<M<*", "-algo", "ipo",
	}, &out); err != nil {
		t.Errorf("refining query failed: %v", err)
	}
}
