package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunFigure8Small(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-figure", "8", "-queries", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"Figure 8", "IPO Tree", "SFS-A", "SFS-D", "order 0", "order 3", "|SKY(R)|/|D|"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunSyntheticTiny(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-figure", "7", "-n", "200", "-queries", "2", "-card", "5", "-topk", "3",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 7") {
		t.Error("figure 7 missing from output")
	}
	if !strings.Contains(out.String(), "IPO Tree-3") {
		t.Error("top-K engine missing from output")
	}
}

func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-figure", "99"},
		{"-mode", "bogus"},
		{"-badflag"},
	}
	for i, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("case %d (%v): no error", i, args)
		}
	}
}

func TestRunFigureSelection(t *testing.T) {
	var out bytes.Buffer
	// Comma-separated selection.
	err := run([]string{"-figure", "8,8", "-queries", "1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out.String(), "Figure 8") < 2 {
		t.Error("comma selection did not run both entries")
	}
}
