// Command experiments regenerates the paper's evaluation (Figures 4-8): for
// every x-axis point it builds the workload, runs IPO Tree, IPO Tree-K,
// SFS-A and SFS-D, and prints the four panels — preprocessing time, query
// time, storage, and the percentage metrics.
//
// Usage:
//
//	experiments [-figure all|4|5|6|7|8] [-scale 0.02] [-n 10000]
//	            [-queries 20] [-card 20] [-order 3] [-topk 10]
//	            [-mode zipf|uniform|topk] [-seed 1] [-parallelism 0]
//
// The default sizes are the paper's Table 4 scaled to laptop scale
// (500K tuples → 10K); -scale applies to the Figure 4 sweep, and the other
// flags override the Table 4 defaults. Expect the full suite to take a few
// minutes at defaults; the paper's own preprocessing ran for up to 10⁵ s.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"prefsky/internal/bench"
	"prefsky/internal/gen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		figure   = fs.String("figure", "all", "which figure to run: all, 4, 5, 6, 7, 8 or kinds")
		scale    = fs.Float64("scale", 0.02, "Figure 4 database-size multiplier (1 = paper size)")
		n        = fs.Int("n", 10000, "tuples for figures 5-7")
		queries  = fs.Int("queries", 20, "random queries per measurement (paper: 100)")
		card     = fs.Int("card", 20, "nominal cardinality (figures 4, 5, 7)")
		orderX   = fs.Int("order", 3, "implicit preference order (figures 4-6)")
		topK     = fs.Int("topk", 10, "K for IPO Tree-K")
		mode     = fs.String("mode", "zipf", "query value mode: zipf, uniform or topk")
		seed     = fs.Int64("seed", 1, "random seed")
		parallel = fs.Int("parallelism", 0, "build workers (0 = GOMAXPROCS)")
		csvPath  = fs.String("csv", "", "also write results to this CSV file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	base := bench.Default()
	base.N = *n
	base.Queries = *queries
	base.Cardinality = *card
	base.Order = *orderX
	base.TopK = *topK
	base.Seed = *seed
	base.Parallelism = *parallel
	switch *mode {
	case "zipf":
		base.Mode = gen.Zipfian
	case "uniform":
		base.Mode = gen.Uniform
	case "topk":
		base.Mode = gen.TopK
	default:
		return fmt.Errorf("unknown -mode %q", *mode)
	}

	type runner struct {
		id  string
		run func() (bench.Figure, error)
	}
	runners := []runner{
		{"4", func() (bench.Figure, error) { return bench.Figure4(base, *scale) }},
		{"5", func() (bench.Figure, error) { return bench.Figure5(base) }},
		{"6", func() (bench.Figure, error) { return bench.Figure6(base) }},
		{"7", func() (bench.Figure, error) { return bench.Figure7(base) }},
		{"8", func() (bench.Figure, error) { return bench.Figure8(base) }},
		// "kinds" reproduces the §5.1 remark comparing the three data set
		// correlations; it is not one of the paper's figures, so it only
		// runs when requested explicitly.
		{"kinds", func() (bench.Figure, error) { return bench.KindSweep(base) }},
	}

	want := strings.Split(*figure, ",")
	selected := runners[:0:0]
	for _, r := range runners {
		if *figure == "all" {
			if r.id != "kinds" {
				selected = append(selected, r)
			}
			continue
		}
		for _, w := range want {
			if strings.TrimSpace(w) == r.id {
				selected = append(selected, r)
			}
		}
	}
	if len(selected) == 0 {
		return fmt.Errorf("no figure matches %q", *figure)
	}

	fmt.Fprintf(out, "prefsky experiments — %d CPU, defaults scaled from Table 4 (N=%d, queries=%d)\n\n",
		runtime.NumCPU(), base.N, base.Queries)
	var figures []bench.Figure
	for _, r := range selected {
		start := time.Now()
		fig, err := r.run()
		if err != nil {
			return err
		}
		if err := fig.Print(out); err != nil {
			return err
		}
		fmt.Fprintf(out, "[figure %s completed in %v]\n\n", r.id, time.Since(start).Round(time.Millisecond))
		figures = append(figures, fig)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := bench.WriteCSV(f, figures...); err != nil {
			return fmt.Errorf("writing %s: %w", *csvPath, err)
		}
		fmt.Fprintf(out, "results written to %s\n", *csvPath)
	}
	return nil
}
