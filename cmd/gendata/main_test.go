package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"prefsky"
)

func TestGenerateAndReload(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "d.csv")
	schemaOut := filepath.Join(dir, "s.json")
	err := run([]string{
		"-n", "150", "-numdims", "2", "-nomdims", "1", "-card", "4",
		"-kind", "independent", "-seed", "3",
		"-out", out, "-schema-out", schemaOut,
	})
	if err != nil {
		t.Fatal(err)
	}
	sf, err := os.Open(schemaOut)
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	schema, err := prefsky.ReadSchemaJSON(sf)
	if err != nil {
		t.Fatal(err)
	}
	df, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer df.Close()
	ds, err := prefsky.ReadCSV(df, schema)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 150 {
		t.Errorf("reloaded %d tuples, want 150", ds.N())
	}
	if ds.Schema().NumDims() != 2 || ds.Schema().NomDims() != 1 {
		t.Error("schema shape wrong after round trip")
	}
}

func TestGenerateNursery(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "n.csv")
	schemaOut := filepath.Join(dir, "n.json")
	if err := run([]string{"-nursery", "-out", out, "-schema-out", schemaOut}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(raw), "\n")
	if lines != 12961 { // header + 12960 rows
		t.Errorf("nursery CSV has %d lines, want 12961", lines)
	}
}

func TestGenerateErrors(t *testing.T) {
	dir := t.TempDir()
	cases := [][]string{
		{"-kind", "bogus", "-out", filepath.Join(dir, "a.csv"), "-schema-out", filepath.Join(dir, "a.json")},
		{"-n", "-5", "-out", filepath.Join(dir, "b.csv"), "-schema-out", filepath.Join(dir, "b.json")},
		{"-out", "/nonexistent-dir/x.csv", "-schema-out", filepath.Join(dir, "c.json")},
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d (%v): no error", i, args)
		}
	}
}
