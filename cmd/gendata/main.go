// Command gendata writes a synthetic dataset in the format the skyline
// command consumes: a CSV file plus a JSON schema. The generator follows §5
// of the paper: independent / correlated / anti-correlated numeric attributes
// and Zipfian nominal attributes.
//
// Usage:
//
//	gendata -n 10000 -numdims 3 -nomdims 2 -card 20 -theta 1 \
//	        -kind anti-correlated -seed 1 -out data.csv -schema-out schema.json
//
// It can also emit the Nursery data set of §5.2 with -nursery.
package main

import (
	"flag"
	"fmt"
	"os"

	"prefsky"
	"prefsky/internal/gen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gendata:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gendata", flag.ContinueOnError)
	var (
		n          = fs.Int("n", 10000, "number of tuples")
		numDims    = fs.Int("numdims", 3, "numeric dimensions")
		nomDims    = fs.Int("nomdims", 2, "nominal dimensions")
		card       = fs.Int("card", 20, "values per nominal dimension")
		theta      = fs.Float64("theta", 1, "Zipf skew of nominal values")
		kindName   = fs.String("kind", "anti-correlated", "independent, correlated or anti-correlated")
		seed       = fs.Int64("seed", 1, "random seed")
		outPath    = fs.String("out", "data.csv", "CSV output path")
		schemaPath = fs.String("schema-out", "schema.json", "JSON schema output path")
		useNursery = fs.Bool("nursery", false, "emit the UCI Nursery data set instead")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		ds  *prefsky.Dataset
		err error
	)
	if *useNursery {
		ds, err = prefsky.NurseryDataset()
	} else {
		kind, kerr := gen.ParseKind(*kindName)
		if kerr != nil {
			return kerr
		}
		ds, err = prefsky.GenerateDataset(prefsky.GenConfig{
			N: *n, NumDims: *numDims, NomDims: *nomDims,
			Cardinality: *card, Theta: *theta, Kind: kind, Seed: *seed,
		})
	}
	if err != nil {
		return err
	}

	out, err := os.Create(*outPath)
	if err != nil {
		return err
	}
	defer out.Close()
	if err := prefsky.WriteCSV(out, ds); err != nil {
		return fmt.Errorf("writing %s: %w", *outPath, err)
	}
	schemaOut, err := os.Create(*schemaPath)
	if err != nil {
		return err
	}
	defer schemaOut.Close()
	if err := prefsky.WriteSchemaJSON(schemaOut, ds.Schema()); err != nil {
		return fmt.Errorf("writing %s: %w", *schemaPath, err)
	}
	fmt.Fprintf(os.Stderr, "gendata: wrote %d tuples to %s (schema: %s)\n", ds.N(), *outPath, *schemaPath)
	return nil
}
