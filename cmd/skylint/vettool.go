// go vet -vettool support: a minimal implementation of the unitchecker
// protocol (golang.org/x/tools/go/analysis/unitchecker), which is how the
// go command drives an external vet tool. go vet invokes the tool once
// with -V=full to obtain a cache key, then once per package with a JSON
// .cfg file describing the compiled unit: source files, the import map,
// and the export-data file for every dependency. The tool type-checks the
// unit from source against that export data, reports diagnostics on
// stderr, and writes a facts file (empty here — the skylint analyzers are
// facts-free) so the go command's vet cache stays coherent.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"io"
	"os"

	"prefsky/internal/analysis/framework"
)

// vetConfig mirrors the fields of unitchecker.Config that skylint needs.
// The go command writes more; unknown fields are ignored.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// printVersion answers the go command's -V=full probe. The executable's
// own hash keys the vet result cache, so a rebuilt skylint invalidates
// stale results.
func printVersion(arg string) {
	if arg != "-V=full" {
		fmt.Fprintf(os.Stderr, "skylint: unsupported flag %s\n", arg)
		os.Exit(2)
	}
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("skylint version devel buildID=%x\n", h.Sum(nil)[:12])
}

// vetUnit analyzes one compilation unit described by a unitchecker cfg
// file and returns the process exit code.
func vetUnit(cfgPath string, analyzers []*framework.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skylint: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "skylint: parsing %s: %v\n", cfgPath, err)
		return 2
	}

	// The facts file must exist even when empty, or the go command treats
	// the run as failed and dependent units refuse to start.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "skylint: writing facts: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	imp := framework.NewExportImporter(fset, func(path string) (string, bool) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		return file, ok
	})
	pkg, err := vetCheck(fset, imp, &cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skylint: %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	if len(pkg.TypeErrors) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "skylint: %s: %v\n", cfg.ImportPath, terr)
		}
		return 1
	}

	diags, err := framework.RunAnalyzers([]*framework.Package{pkg}, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "skylint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer.Name)
	}
	if len(diags) > 0 {
		return 2 // unitchecker convention: 2 = diagnostics found
	}
	return 0
}

// vetCheck type-checks the unit's sources against the cfg's export data.
func vetCheck(fset *token.FileSet, imp types.Importer, cfg *vetConfig) (*framework.Package, error) {
	return framework.CheckFiles(fset, imp, cfg.ImportPath, cfg.Dir, cfg.GoFiles, cfg.GoVersion)
}
