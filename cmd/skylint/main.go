// Command skylint runs the repo's invariant analyzers (internal/analysis)
// over a set of packages, as a standalone multichecker:
//
//	go run ./cmd/skylint ./...
//	go run ./cmd/skylint -run sortban,ctxflow ./internal/cluster
//
// or as a go vet tool via the unitchecker protocol:
//
//	go build -o skylint ./cmd/skylint
//	go vet -vettool=$(pwd)/skylint ./...
//
// Exit status: 0 clean, 1 findings, 2 usage or load error. Directories
// under testdata/ are invisible to ./... patterns but may be named
// explicitly — CI's seeded-violation self-check depends on both halves of
// that.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"prefsky/internal/analysis/framework"
	"prefsky/internal/analysis/skylint"
)

func main() {
	// The go vet protocol probes the tool's flag set and version before
	// handing it per-package .cfg files; these shapes bypass normal flag
	// parsing. Skylint exposes no tool flags to vet, hence the empty list.
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V=") {
		printVersion(os.Args[1])
		return
	}

	runNames := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: skylint [-run names] [-list] packages...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range skylint.Suite() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := skylint.Select(*runNames)
	if err != nil {
		fatal(err)
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetUnit(args[0], analyzers))
	}
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	pkgs, err := framework.Load(".", args...)
	if err != nil {
		fatal(err)
	}
	loadOK := true
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "skylint: %s: %v\n", pkg.ImportPath, terr)
			loadOK = false
		}
	}
	if !loadOK {
		os.Exit(2)
	}

	diags, err := framework.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Printf("%s: %s [%s]\n", pkgs[0].Fset.Position(d.Pos), d.Message, d.Analyzer.Name)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "skylint: %v\n", err)
	os.Exit(2)
}
