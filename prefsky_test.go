package prefsky_test

import (
	"context"
	"reflect"
	"testing"

	"prefsky"
)

// TestPublicAPIEndToEnd drives the whole paper example through the public
// surface only: build the Table 1 data from scratch, run every engine, and
// check the published skylines of Table 2.
func TestPublicAPIEndToEnd(t *testing.T) {
	hotels, err := prefsky.NewDomain("Hotel-group", []string{"T", "H", "M"})
	if err != nil {
		t.Fatal(err)
	}
	schema, err := prefsky.NewSchema(
		[]prefsky.NumericAttr{{Name: "Price"}, {Name: "Hotel-class", HigherIsBetter: true}},
		[]*prefsky.Domain{hotels},
	)
	if err != nil {
		t.Fatal(err)
	}
	mustVal := func(name string) prefsky.Value {
		v, ok := hotels.Lookup(name)
		if !ok {
			t.Fatalf("value %q missing", name)
		}
		return v
	}
	rows := []struct {
		price, class float64
		hotel        string
	}{
		{1600, 4, "T"}, {2400, 1, "T"}, {3000, 5, "H"},
		{3600, 4, "H"}, {2400, 2, "M"}, {3000, 3, "M"},
	}
	points := make([]prefsky.Point, len(rows))
	for i, r := range rows {
		points[i] = prefsky.Point{
			Num: []float64{r.price, -r.class}, // HigherIsBetter is stored negated
			Nom: []prefsky.Value{mustVal(r.hotel)},
		}
	}
	ds, err := prefsky.NewDataset(schema, points)
	if err != nil {
		t.Fatal(err)
	}

	tmpl := schema.EmptyPreference()
	ipo, err := prefsky.NewIPOTree(ds, tmpl, prefsky.TreeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sfsa, err := prefsky.NewAdaptiveSFS(ds, tmpl)
	if err != nil {
		t.Fatal(err)
	}
	sfsd, err := prefsky.NewSFSD(ds)
	if err != nil {
		t.Fatal(err)
	}

	table2 := []struct {
		customer, pref, want string
	}{
		{"Alice", "Hotel-group: T<M<*", "ac"},
		{"Bob", "", "acef"},
		{"Chris", "Hotel-group: H<M<*", "ace"},
		{"David", "Hotel-group: H<M<T", "ace"},
		{"Emily", "Hotel-group: H<T<*", "ac"},
		{"Fred", "Hotel-group: M<*", "acef"},
	}
	for _, c := range table2 {
		pref, err := prefsky.ParsePreference(schema, c.pref)
		if err != nil {
			t.Fatalf("%s: %v", c.customer, err)
		}
		want := make([]prefsky.PointID, len(c.want))
		for i, r := range c.want {
			want[i] = prefsky.PointID(r - 'a')
		}
		for _, e := range []prefsky.Engine{ipo, sfsa, sfsd} {
			got, err := e.Skyline(context.Background(), pref)
			if err != nil {
				t.Fatalf("%s/%s: %v", c.customer, e.Name(), err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s/%s = %v, want %v", c.customer, e.Name(), got, want)
			}
		}
	}
}

func TestPublicFixtures(t *testing.T) {
	if prefsky.Table1().N() != 6 || prefsky.Table3().N() != 6 {
		t.Error("fixtures wrong size")
	}
	nur, err := prefsky.NurseryDataset()
	if err != nil {
		t.Fatal(err)
	}
	if nur.N() != 12960 {
		t.Errorf("Nursery N = %d", nur.N())
	}
}

func TestPublicGeneration(t *testing.T) {
	ds, err := prefsky.GenerateDataset(prefsky.GenConfig{
		N: 100, NumDims: 2, NomDims: 1, Cardinality: 5, Theta: 1,
		Kind: prefsky.AntiCorrelated, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tmpl, err := prefsky.FrequentTemplate(ds)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := prefsky.GenerateQueries(ds.Schema().Cardinalities(), tmpl, prefsky.QueryConfig{
		Order: 2, Count: 4, Mode: prefsky.ZipfianValues, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 4 {
		t.Fatalf("generated %d queries", len(qs))
	}
	e, err := prefsky.NewHybrid(ds, tmpl, prefsky.TreeOptions{TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	sfsd, _ := prefsky.NewSFSD(ds)
	for _, q := range qs {
		got, err := e.Skyline(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := sfsd.Skyline(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("hybrid disagrees with SFS-D on %v", q)
		}
	}
}

func TestMaintainableEngine(t *testing.T) {
	ds := prefsky.Table1()
	e, err := prefsky.NewMaintainable(ds, ds.Schema().EmptyPreference())
	if err != nil {
		t.Fatal(err)
	}
	// Progressive iteration through the public alias.
	pref, _ := prefsky.ParsePreference(ds.Schema(), "Hotel-group: T<M<*")
	it, err := e.QueryIter(pref)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		n++
	}
	if n != 2 {
		t.Errorf("progressive scan yielded %d points, want 2", n)
	}
	// Maintenance through the public alias.
	if _, err := e.Insert([]float64{100, -5}, []prefsky.Value{0}); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete(0); err != nil {
		t.Fatal(err)
	}
	if e.N() != 6 {
		t.Errorf("N after insert+delete = %d, want 6", e.N())
	}
}
