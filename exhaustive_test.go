package prefsky_test

import (
	"context"
	"reflect"
	"testing"

	"prefsky"
	"prefsky/internal/dominance"
	"prefsky/internal/flat"
	"prefsky/internal/parallel"
	"prefsky/internal/skyline"
)

// enumerateImplicit lists every implicit preference over a domain of
// cardinality k (all ordered selections of every length).
func enumerateImplicit(k int) []*prefsky.Implicit {
	var out []*prefsky.Implicit
	var rec func(entries []prefsky.Value)
	rec = func(entries []prefsky.Value) {
		ip, err := prefsky.NewImplicit(k, entries...)
		if err != nil {
			panic(err)
		}
		out = append(out, ip)
		used := make(map[prefsky.Value]bool, len(entries))
		for _, v := range entries {
			used[v] = true
		}
		for v := prefsky.Value(0); int(v) < k; v++ {
			if !used[v] {
				rec(append(append([]prefsky.Value(nil), entries...), v))
			}
		}
	}
	rec(nil)
	return out
}

// TestExhaustiveAllPreferencesTable3 validates the IPO-tree and Adaptive SFS
// against the naive reference on *every* implicit preference over Table 3 —
// 16 × 16 = 256 preference combinations, no randomness. This is the complete
// space Table 2 samples from.
func TestExhaustiveAllPreferencesTable3(t *testing.T) {
	ds := prefsky.Table3()
	schema := ds.Schema()
	tmpl := schema.EmptyPreference()
	tree, err := prefsky.NewIPOTree(ds, tmpl, prefsky.TreeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sfsa, err := prefsky.NewAdaptiveSFS(ds, tmpl)
	if err != nil {
		t.Fatal(err)
	}
	hotel := enumerateImplicit(3)
	airline := enumerateImplicit(3)
	checked := 0
	for _, h := range hotel {
		for _, a := range airline {
			pref, err := prefsky.NewPreference(h, a)
			if err != nil {
				t.Fatal(err)
			}
			cmp, err := dominance.NewComparator(schema, pref)
			if err != nil {
				t.Fatal(err)
			}
			want := skyline.Naive(ds.Points(), cmp)
			gotTree, err := tree.Skyline(context.Background(), pref)
			if err != nil {
				t.Fatalf("%v: tree: %v", pref, err)
			}
			if !reflect.DeepEqual(gotTree, want) {
				t.Fatalf("%v: tree = %v, naive = %v", pref, gotTree, want)
			}
			gotSFSA, err := sfsa.Skyline(context.Background(), pref)
			if err != nil {
				t.Fatalf("%v: SFS-A: %v", pref, err)
			}
			if !reflect.DeepEqual(gotSFSA, want) {
				t.Fatalf("%v: SFS-A = %v, naive = %v", pref, gotSFSA, want)
			}
			checked++
		}
	}
	if checked != 256 {
		t.Errorf("checked %d preference combinations, want 256", checked)
	}
}

// TestExhaustiveParallelAllPreferencesTable3 extends the exhaustive sweep to
// the partitioned engine: for every implicit preference over Table 3 and
// every partition count 1..8, parallel-sfs must return exactly the naive
// reference skyline. Table 3 is smaller than any sensible block size, so the
// explicit partition counts force genuinely multi-block executions (blocks
// down to one point each) through the merge-filter.
func TestExhaustiveParallelAllPreferencesTable3(t *testing.T) {
	ds := prefsky.Table3()
	schema := ds.Schema()
	engines := make([]prefsky.Engine, 0, 8)
	for parts := 1; parts <= 8; parts++ {
		e, err := prefsky.NewParallelSFS(ds, parts)
		if err != nil {
			t.Fatal(err)
		}
		engines = append(engines, e)
	}
	for _, h := range enumerateImplicit(3) {
		for _, a := range enumerateImplicit(3) {
			pref, err := prefsky.NewPreference(h, a)
			if err != nil {
				t.Fatal(err)
			}
			cmp, err := dominance.NewComparator(schema, pref)
			if err != nil {
				t.Fatal(err)
			}
			want := skyline.Naive(ds.Points(), cmp)
			for parts, e := range engines {
				got, err := e.Skyline(context.Background(), pref)
				if err != nil {
					t.Fatalf("%v: parallel(%d): %v", pref, parts+1, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%v: parallel(%d) = %v, naive = %v", pref, parts+1, got, want)
				}
			}
		}
	}
}

// TestExhaustiveFlatAllPreferencesTable3 runs the complete Table-3
// preference space through the columnar kernel: for all 256 preference
// combinations, the flat skyline — and the flat partitioned skyline under a
// shared projection for every partition count 1..8 — must equal the naive
// reference. This is the exhaustive half of the flat ≡ Comparator ≡
// POComparator proof (the random half lives in internal/flat).
func TestExhaustiveFlatAllPreferencesTable3(t *testing.T) {
	ds := prefsky.Table3()
	schema := ds.Schema()
	blk := flat.NewBlock(ds)
	for _, h := range enumerateImplicit(3) {
		for _, a := range enumerateImplicit(3) {
			pref, err := prefsky.NewPreference(h, a)
			if err != nil {
				t.Fatal(err)
			}
			cmp, err := dominance.NewComparator(schema, pref)
			if err != nil {
				t.Fatal(err)
			}
			want := skyline.Naive(ds.Points(), cmp)
			proj, err := blk.Project(cmp)
			if err != nil {
				t.Fatal(err)
			}
			if got := proj.Skyline(); !reflect.DeepEqual(got, want) {
				t.Fatalf("%v: flat = %v, naive = %v", pref, got, want)
			}
			for parts := 1; parts <= 8; parts++ {
				got, err := parallel.SkylineProjected(context.Background(), proj, parts)
				if err != nil {
					t.Fatalf("%v: flat parallel(%d): %v", pref, parts, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%v: flat parallel(%d) = %v, naive = %v", pref, parts, got, want)
				}
			}
		}
	}
}

// TestExhaustiveSkylineAlwaysNonEmpty: every preference over a non-empty
// dataset has a non-empty skyline (a minimal element always exists in a
// finite strict partial order).
func TestExhaustiveSkylineAlwaysNonEmpty(t *testing.T) {
	ds := prefsky.Table3()
	tmpl := ds.Schema().EmptyPreference()
	tree, err := prefsky.NewIPOTree(ds, tmpl, prefsky.TreeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range enumerateImplicit(3) {
		for _, a := range enumerateImplicit(3) {
			pref, _ := prefsky.NewPreference(h, a)
			got, err := tree.Skyline(context.Background(), pref)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) == 0 {
				t.Fatalf("empty skyline under %v", pref)
			}
			// Package a (cheapest, best class among T) is never dominated:
			// nothing is strictly better on price.
			if got[0] != 0 {
				t.Fatalf("package a missing from skyline under %v: %v", pref, got)
			}
		}
	}
}
